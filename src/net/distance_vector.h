// Distributed route computation: distance-vector protocol simulation.
//
// Section 3 assumes each source owns a fixed path to every anycast member,
// "obtained via the existing routing protocols [13, 14]" — i.e. computed by
// the routers themselves, not by a central oracle. This module simulates a
// RIP-style distance-vector protocol at the protocol-round level: each round
// every router advertises its current distance vector to its neighbours, who
// relax their tables (Bellman-Ford). The result converges to the same
// hop-count shortest paths RouteTable computes centrally — a property the
// tests assert — while exposing protocol-level behaviour (convergence round
// counts, reconvergence after topology changes, count-to-infinity guarded by
// a hop limit).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/net/routing.h"
#include "src/net/topology.h"

namespace anyqos::net {

/// One router's routing table produced by the protocol: per destination, the
/// hop distance (kUnreachable when none) and the next-hop link.
struct RoutingTableEntry {
  std::size_t distance = kUnreachable;
  LinkId next_hop = kInvalidLink;
};

/// Simulates a synchronous distance-vector protocol over a topology.
///
/// Rounds are synchronous full exchanges (every router advertises once per
/// round); `converge` runs rounds until no table changes. The infinity metric
/// (`max_diameter`) bounds count-to-infinity after failures, mirroring RIP's
/// metric 16.
class DistanceVectorProtocol {
 public:
  /// `topology` must outlive the protocol. `max_diameter` is the largest
  /// usable hop distance; anything longer is treated as unreachable.
  explicit DistanceVectorProtocol(const Topology& topology, std::size_t max_diameter = 32);

  /// Runs one synchronous advertisement round.
  /// Returns true when any routing-table entry changed.
  bool step();

  /// Runs rounds until a fixed point (or `max_rounds`); returns the number of
  /// rounds executed. Converged when a round changes nothing.
  std::size_t converge(std::size_t max_rounds = 1'000);

  /// True when the last step() changed nothing.
  [[nodiscard]] bool converged() const { return converged_; }

  /// Current table entry at `router` for `destination`.
  [[nodiscard]] const RoutingTableEntry& entry(NodeId router, NodeId destination) const;

  /// Extracts the full path `source -> destination` by following next-hops.
  /// Returns nullopt when the destination is unreachable (or the tables have
  /// not converged and contain a transient loop longer than max_diameter).
  [[nodiscard]] std::optional<Path> path(NodeId source, NodeId destination) const;

  /// Marks a directed link (and its reverse) unusable and poisons routes
  /// through it, as a router pair would after losing keepalives. Call
  /// converge() afterwards to let the network reroute.
  void fail_duplex_link(LinkId link);

  /// Returns a previously failed duplex link to service.
  void restore_duplex_link(LinkId link);

  [[nodiscard]] std::size_t max_diameter() const { return max_diameter_; }

 private:
  [[nodiscard]] bool link_usable(LinkId link) const;
  RoutingTableEntry& entry_mut(NodeId router, NodeId destination);

  const Topology* topology_;
  std::size_t max_diameter_;
  std::vector<RoutingTableEntry> table_;  // router-major [router][destination]
  std::vector<char> link_down_;           // per directed link
  bool converged_ = false;
};

/// Convenience: converge a protocol instance on `topology` and return a
/// RouteTable-compatible set of paths to `destinations` from every router.
/// Throws std::invalid_argument when some pair is disconnected.
std::vector<Path> distance_vector_routes(const Topology& topology,
                                         const std::vector<NodeId>& destinations);

}  // namespace anyqos::net
