#include "src/net/link_state.h"

#include <algorithm>
#include <queue>

#include "src/util/require.h"

namespace anyqos::net {

LinkStateProtocol::LinkStateProtocol(const Topology& topology)
    : topology_(&topology),
      duplex_count_(topology.link_count() / 2),
      lsdb_(topology.router_count() * (topology.link_count() / 2)),
      current_sequence_(topology.link_count() / 2, 1),
      link_up_(topology.link_count() / 2, 1) {
  // Each router starts with fresh LSAs for its own attached links.
  for (NodeId r = 0; r < topology.router_count(); ++r) {
    for (const LinkId out : topology.graph().out_arcs(r)) {
      LinkStateRecord& rec = record_mut(r, duplex_index(out));
      rec.sequence = 1;
      rec.up = true;
    }
  }
}

LinkStateRecord& LinkStateProtocol::record_mut(NodeId router, std::size_t duplex) {
  return lsdb_[router * duplex_count_ + duplex];
}

const LinkStateRecord& LinkStateProtocol::record(NodeId router, LinkId link) const {
  util::require(router < topology_->router_count(), "router out of range");
  util::require(link < topology_->link_count(), "link out of range");
  return lsdb_[router * duplex_count_ + duplex_index(link)];
}

bool LinkStateProtocol::step() {
  const std::size_t n = topology_->router_count();
  bool changed = false;
  const std::vector<LinkStateRecord> snapshot = lsdb_;
  const auto snap = [&](NodeId router, std::size_t duplex) -> const LinkStateRecord& {
    return snapshot[router * duplex_count_ + duplex];
  };
  for (NodeId r = 0; r < n; ++r) {
    for (const LinkId out : topology_->graph().out_arcs(r)) {
      // Flooding only crosses operational links.
      if (link_up_[duplex_index(out)] == 0) {
        continue;
      }
      const NodeId neighbour = topology_->link(out).to;
      for (std::size_t d = 0; d < duplex_count_; ++d) {
        const LinkStateRecord& theirs = snap(neighbour, d);
        LinkStateRecord& mine = record_mut(r, d);
        if (theirs.sequence > mine.sequence) {
          mine = theirs;
          changed = true;
        }
      }
    }
  }
  converged_ = !changed;
  return changed;
}

std::size_t LinkStateProtocol::converge(std::size_t max_rounds) {
  util::require(max_rounds >= 1, "need at least one round");
  for (std::size_t round = 1; round <= max_rounds; ++round) {
    if (!step()) {
      return round;
    }
  }
  return max_rounds;
}

bool LinkStateProtocol::database_complete(NodeId router) const {
  util::require(router < topology_->router_count(), "router out of range");
  for (std::size_t d = 0; d < duplex_count_; ++d) {
    if (lsdb_[router * duplex_count_ + d].sequence != current_sequence_[d]) {
      return false;
    }
  }
  return true;
}

std::optional<Path> LinkStateProtocol::spf_path(NodeId router, NodeId destination) const {
  util::require(router < topology_->router_count(), "router out of range");
  util::require(destination < topology_->router_count(), "destination out of range");
  // BFS over the links this router believes are up, visiting out-links in id
  // order — the same deterministic traversal as net::shortest_path, so with
  // a complete LSDB the paths match exactly.
  const std::size_t n = topology_->router_count();
  std::vector<std::size_t> dist(n, kUnreachable);
  std::vector<LinkId> parent(n, kInvalidLink);
  std::queue<NodeId> frontier;
  dist[router] = 0;
  frontier.push(router);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const LinkId id : topology_->graph().out_arcs(u)) {
      const LinkStateRecord& rec = lsdb_[router * duplex_count_ + duplex_index(id)];
      if (rec.sequence == 0 || !rec.up) {
        continue;  // unknown or down in this router's view
      }
      const NodeId v = topology_->link(id).to;
      if (dist[v] != kUnreachable) {
        continue;
      }
      dist[v] = dist[u] + 1;
      parent[v] = id;
      frontier.push(v);
    }
  }
  if (dist[destination] == kUnreachable) {
    return std::nullopt;
  }
  Path path;
  path.source = router;
  path.destination = destination;
  NodeId at = destination;
  while (at != router) {
    const LinkId id = parent[at];
    path.links.push_back(id);
    at = topology_->link(id).from;
  }
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

void LinkStateProtocol::originate(LinkId link, bool up) {
  const std::size_t d = duplex_index(link);
  ++current_sequence_[d];
  link_up_[d] = up ? 1 : 0;
  const Arc& arc = topology_->link(link);
  for (const NodeId endpoint : {arc.from, arc.to}) {
    LinkStateRecord& rec = record_mut(endpoint, d);
    rec.sequence = current_sequence_[d];
    rec.up = up;
  }
  converged_ = false;
}

void LinkStateProtocol::fail_duplex_link(LinkId link) {
  util::require(link < topology_->link_count(), "link out of range");
  util::require(link_up_[duplex_index(link)] == 1, "link already failed");
  originate(link, false);
}

void LinkStateProtocol::restore_duplex_link(LinkId link) {
  util::require(link < topology_->link_count(), "link out of range");
  util::require(link_up_[duplex_index(link)] == 0, "link is not failed");
  originate(link, true);
}

}  // namespace anyqos::net
