// Network topology: routers connected by capacity-bearing duplex links.
//
// Follows the paper's model (Section 3): nodes are routers (each with one
// attached host); links have a bandwidth capacity, part of which is set aside
// for anycast flows (Section 5.1 reserves 20% of 100 Mbit/s links).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/net/graph.h"

namespace anyqos::net {

/// Bits per second.
using Bandwidth = double;

/// A path through the network: a node sequence realized by directed links.
struct Path {
  NodeId source = kInvalidNode;
  NodeId destination = kInvalidNode;
  std::vector<LinkId> links;  // consecutive directed links source -> destination

  /// Number of links (the paper's hop-count distance metric).
  [[nodiscard]] std::size_t hops() const { return links.size(); }
  [[nodiscard]] bool empty() const { return links.empty(); }
};

/// An immutable-after-build network of routers and duplex links.
///
/// Each duplex link is materialized as two directed arcs with independent
/// capacity, matching full-duplex transmission. LinkIds refer to directed
/// arcs throughout the library.
class Topology {
 public:
  Topology() = default;

  /// Adds a router; `name` is for reporting only. Returns its id.
  NodeId add_router(std::string name = {});

  /// Adds a duplex link between routers `a` and `b` with per-direction
  /// capacity `capacity_bps`. Returns the two directed link ids (a->b, b->a).
  std::pair<LinkId, LinkId> add_duplex_link(NodeId a, NodeId b, Bandwidth capacity_bps);

  [[nodiscard]] std::size_t router_count() const { return graph_.node_count(); }
  /// Number of *directed* links (2x the duplex link count).
  [[nodiscard]] std::size_t link_count() const { return graph_.arc_count(); }
  /// Number of duplex links.
  [[nodiscard]] std::size_t duplex_link_count() const { return link_count() / 2; }

  [[nodiscard]] const Graph& graph() const { return graph_; }
  [[nodiscard]] const Arc& link(LinkId id) const { return graph_.arc(id); }
  /// Per-direction raw capacity of directed link `id`.
  [[nodiscard]] Bandwidth capacity(LinkId id) const;
  /// Router display name ("r<id>" when not set).
  [[nodiscard]] std::string router_name(NodeId id) const;

  /// Directed link a->b, if any.
  [[nodiscard]] std::optional<LinkId> find_link(NodeId a, NodeId b) const;
  /// The opposite direction of directed link `id`.
  [[nodiscard]] LinkId reverse_link(LinkId id) const;

  /// Validates that `path` is a contiguous link sequence from path.source to
  /// path.destination; throws std::invalid_argument when malformed.
  void validate_path(const Path& path) const;

  /// True when the router graph is connected (it is built from duplex links,
  /// so strong and weak connectivity coincide).
  [[nodiscard]] bool connected() const { return graph_.strongly_connected(); }

 private:
  Graph graph_;
  std::vector<Bandwidth> capacity_;      // per directed link
  std::vector<LinkId> reverse_;          // per directed link
  std::vector<std::string> names_;       // per router
};

}  // namespace anyqos::net
