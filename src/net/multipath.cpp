#include "src/net/multipath.h"

#include "src/util/require.h"

namespace anyqos::net {

MultiPathRouteTable::MultiPathRouteTable(const Topology& topology,
                                         std::vector<NodeId> destinations,
                                         std::size_t paths_per_pair)
    : destinations_(std::move(destinations)),
      k_(paths_per_pair),
      router_count_(topology.router_count()) {
  util::require(!destinations_.empty(), "need at least one destination");
  util::require(paths_per_pair >= 1, "need at least one path per pair");
  paths_.reserve(router_count_ * destinations_.size());
  for (NodeId source = 0; source < router_count_; ++source) {
    for (const NodeId dest : destinations_) {
      std::vector<Path> ranked = k_shortest_paths(topology, source, dest, k_);
      util::require(!ranked.empty(), "topology is disconnected: no route from " +
                                         std::to_string(source) + " to " +
                                         std::to_string(dest));
      paths_.push_back(std::move(ranked));
    }
  }
}

const std::vector<Path>& MultiPathRouteTable::bucket(NodeId source, std::size_t index) const {
  util::require(source < router_count_, "source out of range");
  util::require(index < destinations_.size(), "destination index out of range");
  return paths_[source * destinations_.size() + index];
}

std::size_t MultiPathRouteTable::path_count(NodeId source, std::size_t index) const {
  return bucket(source, index).size();
}

const Path& MultiPathRouteTable::path(NodeId source, std::size_t index,
                                      std::size_t rank) const {
  const std::vector<Path>& ranked = bucket(source, index);
  util::require(rank < ranked.size(), "path rank out of range");
  return ranked[rank];
}

std::size_t MultiPathRouteTable::alternatives(NodeId source) const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < destinations_.size(); ++i) {
    total += path_count(source, i);
  }
  return total;
}

}  // namespace anyqos::net
