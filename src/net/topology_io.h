// Topology serialization: a small line-oriented text format so users can run
// the suite on their own edge lists (e.g. the exact MCI Figure-2 topology, if
// recovered) without recompiling.
//
// Format (one record per line, '#' starts a comment):
//   node <id> [name]
//   link <a> <b> <capacity_bps>
// Node ids must be dense and declared before use; links are duplex.
//
// Example:
//   # three routers in a triangle
//   node 0 SEA
//   node 1 SFO
//   node 2 LAX
//   link 0 1 100000000
//   link 1 2 100000000
//   link 2 0 100000000
#pragma once

#include <iosfwd>
#include <string>

#include "src/net/topology.h"

namespace anyqos::net {

/// Parses the text format; throws std::invalid_argument with a line number
/// on malformed input.
Topology parse_topology(std::istream& in);

/// Convenience overload over a string.
Topology parse_topology_text(const std::string& text);

/// Loads a topology from a file; throws std::invalid_argument when the file
/// cannot be opened or parsed.
Topology load_topology(const std::string& path);

/// Serializes a topology in the same format (round-trips through parse).
std::string topology_to_text(const Topology& topology);

/// Writes topology_to_text to a file; throws on I/O failure.
void save_topology(const Topology& topology, const std::string& path);

}  // namespace anyqos::net
