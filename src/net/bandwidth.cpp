#include "src/net/bandwidth.h"

#include <algorithm>
#include <limits>

#include "src/util/require.h"

namespace anyqos::net {

namespace {
// Reservations are multiples of the flow bandwidth; a relative epsilon guards
// the floating-point accumulation in release() underflowing slightly below 0.
constexpr double kSlack = 1e-6;
}  // namespace

void LedgerObserver::on_reservation_narrowed(const Path& from, const Path& to, Bandwidth amount) {
  on_release(from, amount);
  if (!to.links.empty()) {
    on_reserve(to, amount);
  }
}

BandwidthLedger::BandwidthLedger(const Topology& topology, double anycast_share)
    : topology_(&topology) {
  util::require(anycast_share > 0.0 && anycast_share <= 1.0,
                "anycast share must be in (0,1]");
  const std::size_t n = topology.link_count();
  capacity_.reserve(n);
  for (LinkId id = 0; id < n; ++id) {
    capacity_.push_back(topology.capacity(id) * anycast_share);
  }
  available_ = capacity_;
  nominal_capacity_ = capacity_;
}

void BandwidthLedger::fail_link(LinkId id) {
  check_link(id);
  util::require(!is_failed(id), "link is already failed");
  util::require(available_[id] >= capacity_[id] - kSlack * (capacity_[id] + 1.0),
                "cannot fail a link with active reservations");
  capacity_[id] = 0.0;
  available_[id] = 0.0;
  if (observer_ != nullptr) {
    observer_->on_link_failed(id);
  }
}

void BandwidthLedger::restore_link(LinkId id) {
  check_link(id);
  util::require(is_failed(id), "only failed links can be restored");
  capacity_[id] = nominal_capacity_[id];
  available_[id] = nominal_capacity_[id];
  if (observer_ != nullptr) {
    observer_->on_link_restored(id);
  }
}

bool BandwidthLedger::is_failed(LinkId id) const {
  check_link(id);
  return capacity_[id] == 0.0;
}

Bandwidth BandwidthLedger::capacity(LinkId id) const {
  check_link(id);
  return capacity_[id];
}

Bandwidth BandwidthLedger::available(LinkId id) const {
  check_link(id);
  return available_[id];
}

Bandwidth BandwidthLedger::reserved(LinkId id) const {
  check_link(id);
  return capacity_[id] - available_[id];
}

double BandwidthLedger::utilization(LinkId id) const {
  check_link(id);
  if (capacity_[id] == 0.0) {
    return 1.0;  // a failed link is fully unusable
  }
  return (capacity_[id] - available_[id]) / capacity_[id];
}

Bandwidth BandwidthLedger::bottleneck(const Path& path) const {
  Bandwidth minimum = std::numeric_limits<Bandwidth>::infinity();
  for (const LinkId id : path.links) {
    check_link(id);
    minimum = std::min(minimum, available_[id]);
  }
  return minimum;
}

bool BandwidthLedger::can_reserve(const Path& path, Bandwidth amount) const {
  util::require(amount > 0.0, "reservation amount must be positive");
  for (const LinkId id : path.links) {
    check_link(id);
    if (available_[id] + kSlack * amount < amount) {
      return false;
    }
  }
  return true;
}

bool BandwidthLedger::reserve(const Path& path, Bandwidth amount) {
  if (!can_reserve(path, amount)) {
    return false;
  }
  for (const LinkId id : path.links) {
    available_[id] -= amount;
    if (available_[id] < 0.0) {  // floating point slack only
      util::ensure(available_[id] > -kSlack * amount, "reservation drove availability negative");
      available_[id] = 0.0;
    }
  }
  if (observer_ != nullptr) {
    observer_->on_reserve(path, amount);
  }
  return true;
}

void BandwidthLedger::release(const Path& path, Bandwidth amount) {
  util::require(amount > 0.0, "release amount must be positive");
  // Validate first so a bad release leaves the ledger untouched.
  for (const LinkId id : path.links) {
    check_link(id);
    util::ensure(available_[id] + amount <= capacity_[id] + kSlack * amount,
                 "release exceeds reserved bandwidth on a link");
  }
  if (observer_ != nullptr) {
    observer_->on_release(path, amount);  // may throw; ledger still untouched
  }
  for (const LinkId id : path.links) {
    available_[id] = std::min(available_[id] + amount, capacity_[id]);
  }
}

void BandwidthLedger::narrow(const Path& from, const Path& to, Bandwidth amount) {
  util::require(amount > 0.0, "narrow amount must be positive");
  // Multiset difference: the links of `from` being released. Consumes one
  // occurrence of each `to` link; everything left over is released.
  std::vector<LinkId> keep = to.links;
  std::vector<LinkId> released;
  released.reserve(from.links.size());
  for (const LinkId id : from.links) {
    const auto it = std::find(keep.begin(), keep.end(), id);
    if (it != keep.end()) {
      keep.erase(it);
    } else {
      released.push_back(id);
    }
  }
  util::require(keep.empty(), "narrowed path must be a sub-path of the original");
  // Validate first so a bad narrow leaves the ledger untouched.
  for (const LinkId id : released) {
    check_link(id);
    util::ensure(available_[id] + amount <= capacity_[id] + kSlack * amount,
                 "narrow releases more than was reserved on a link");
  }
  if (observer_ != nullptr) {
    observer_->on_reservation_narrowed(from, to, amount);  // may throw; untouched
  }
  for (const LinkId id : released) {
    available_[id] = std::min(available_[id] + amount, capacity_[id]);
  }
}

Bandwidth BandwidthLedger::total_reserved() const {
  Bandwidth total = 0.0;
  for (LinkId id = 0; id < available_.size(); ++id) {
    total += capacity_[id] - available_[id];
  }
  return total;
}

void BandwidthLedger::check_link(LinkId id) const {
  util::require(id < available_.size(), "link id out of range");
}

}  // namespace anyqos::net
