// Multiple fixed paths per (source, member) pair (extension).
//
// The paper fixes ONE route per source-member pair and lets GDI alone use
// arbitrary paths. A practical midpoint — standard in QoS-routing follow-up
// work — precomputes k loopless shortest paths per pair (Yen) and lets the
// DAC procedure retry across paths as well as members. This module provides
// that route set; core::MultiPathAdmissionController consumes it.
#pragma once

#include <vector>

#include "src/net/routing.h"
#include "src/net/topology.h"

namespace anyqos::net {

/// Up to `k` precomputed loopless paths from every router to each
/// destination, in non-decreasing hop order (pairs closer than k paths keep
/// what exists; every pair has at least one).
class MultiPathRouteTable {
 public:
  /// Throws std::invalid_argument when some pair is disconnected.
  MultiPathRouteTable(const Topology& topology, std::vector<NodeId> destinations,
                      std::size_t paths_per_pair);

  [[nodiscard]] const std::vector<NodeId>& destinations() const { return destinations_; }
  [[nodiscard]] std::size_t destination_count() const { return destinations_.size(); }
  [[nodiscard]] std::size_t max_paths_per_pair() const { return k_; }

  /// Number of stored paths for (source, destination index); 1..k.
  [[nodiscard]] std::size_t path_count(NodeId source, std::size_t index) const;
  /// The `rank`-th shortest stored path (rank < path_count).
  [[nodiscard]] const Path& path(NodeId source, std::size_t index, std::size_t rank) const;

  /// Total (member, path) alternatives available from `source`.
  [[nodiscard]] std::size_t alternatives(NodeId source) const;

 private:
  [[nodiscard]] const std::vector<Path>& bucket(NodeId source, std::size_t index) const;

  std::vector<NodeId> destinations_;
  std::size_t k_;
  std::size_t router_count_;
  std::vector<std::vector<Path>> paths_;  // [source * D + index] -> ranked paths
};

}  // namespace anyqos::net
