// Structural topology metrics (diameter, degrees) used by reports, examples
// and the topology-robustness ablation to characterize the networks compared.
#pragma once

#include <cstddef>
#include <vector>

#include "src/net/topology.h"

namespace anyqos::net {

/// Hop-count diameter: the longest shortest path over all router pairs.
/// Requires a connected topology (throws otherwise).
std::size_t diameter(const Topology& topology);

/// Mean number of duplex links per router.
double average_degree(const Topology& topology);

/// Degree (duplex links) of every router, indexed by NodeId.
std::vector<std::size_t> degrees(const Topology& topology);

/// Average hop distance over all ordered router pairs (connected only).
double mean_distance(const Topology& topology);

}  // namespace anyqos::net
