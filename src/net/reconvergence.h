// Reconvergence policies: how long the routing plane takes to react to a
// topology change.
//
// The paper assumes routes "obtained via the existing routing protocols" and
// never changes them; real routing protocols do change them, after a
// convergence delay during which signaling walks stale routes and fails with
// PATH_ERR. A ReconvergencePolicy models only that delay — the route
// recomputation itself is RouteTable::recompute, driven by sim::Simulation.
#pragma once

#include <string>

#include "src/net/topology.h"

namespace anyqos::net {

/// Models the time between a topology change and the moment every router's
/// route table reflects it. Stateless with respect to individual changes:
/// Simulation restarts the delay on each change (a burst of failures
/// converges `delay_s` after the *last* one, matching how flooding storms
/// coalesce).
class ReconvergencePolicy {
 public:
  virtual ~ReconvergencePolicy() = default;

  /// Seconds from a topology change to a fully converged route table.
  [[nodiscard]] virtual double delay_s(const Topology& topology) const = 0;

  /// Short label for summaries and artifacts (e.g. "instant", "flooding").
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Oracle: routes recompute in the same simulated instant as the change
/// (after the current event batch). The upper bound on repair performance.
class InstantReconvergence final : public ReconvergencePolicy {
 public:
  [[nodiscard]] double delay_s(const Topology&) const override { return 0.0; }
  [[nodiscard]] std::string name() const override { return "instant"; }
};

/// Fixed operator-configured delay, independent of topology shape.
class FixedReconvergence final : public ReconvergencePolicy {
 public:
  explicit FixedReconvergence(double delay_s);
  [[nodiscard]] double delay_s(const Topology&) const override { return delay_s_; }
  [[nodiscard]] std::string name() const override { return "fixed"; }

 private:
  double delay_s_;
};

/// O(diameter) delay derived from the link-state flooding model: an LSA
/// reaches the farthest router in `diameter` synchronous flooding rounds
/// (LinkStateProtocol::converge observes exactly this bound), plus one round
/// for the local SPF recompute. delay = (diameter + 1) * per_round_s.
class FloodingReconvergence final : public ReconvergencePolicy {
 public:
  explicit FloodingReconvergence(double per_round_s);
  [[nodiscard]] double delay_s(const Topology& topology) const override;
  [[nodiscard]] std::string name() const override { return "flooding"; }

 private:
  double per_round_s_;
  mutable std::size_t cached_diameter_ = 0;  // 0 = not computed yet
};

/// Hop-count diameter of the full (all links up) topology.
std::size_t topology_diameter(const Topology& topology);

}  // namespace anyqos::net
