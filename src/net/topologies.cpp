#include "src/net/topologies.h"

#include <array>
#include <cmath>
#include <utility>
#include <vector>

#include "src/des/random.h"
#include "src/util/require.h"

namespace anyqos::net::topologies {

Topology mci_backbone(Bandwidth capacity_bps) {
  Topology topo;
  // City labels are cosmetic; ids 0..18 are what the experiment model uses
  // (sources at odd ids, the anycast group at hosts of 0, 4, 8, 12, 16).
  static constexpr std::array<const char*, 19> kNames = {
      "SEA", "SFO", "LAX", "SLC", "DEN", "PHX", "KCY", "HOU", "CHI", "STL",
      "DFW", "ATL", "DCA", "ORL", "NYC", "BOS", "PIT", "CLE", "RDU"};
  for (const char* name : kNames) {
    topo.add_router(name);
  }
  // 33 duplex links forming a mesh with average degree ~3.5 and route
  // lengths 1..6 between the evaluation's sources and group members.
  static constexpr std::array<std::pair<NodeId, NodeId>, 33> kLinks = {{
      {0, 1},  {0, 2},   {0, 3},   {1, 4},   {1, 5},   {2, 3},   {2, 6},
      {3, 4},  {3, 7},   {4, 5},   {4, 8},   {5, 9},   {6, 7},   {6, 10},
      {7, 8},  {7, 11},  {8, 9},   {8, 12},  {9, 13},  {10, 11}, {10, 14},
      {11, 12}, {11, 15}, {12, 13}, {12, 16}, {13, 17}, {14, 15}, {14, 18},
      {15, 16}, {15, 18}, {16, 17}, {16, 18}, {17, 18},
  }};
  for (const auto& [a, b] : kLinks) {
    topo.add_duplex_link(a, b, capacity_bps);
  }
  util::ensure(topo.connected(), "MCI backbone must be connected");
  return topo;
}

Topology line(std::size_t n, Bandwidth capacity_bps) {
  util::require(n >= 2, "line needs at least 2 routers");
  Topology topo;
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_router();
  }
  for (std::size_t i = 0; i + 1 < n; ++i) {
    topo.add_duplex_link(static_cast<NodeId>(i), static_cast<NodeId>(i + 1), capacity_bps);
  }
  return topo;
}

Topology ring(std::size_t n, Bandwidth capacity_bps) {
  util::require(n >= 3, "ring needs at least 3 routers");
  Topology topo;
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_router();
  }
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_duplex_link(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n), capacity_bps);
  }
  return topo;
}

Topology star(std::size_t n, Bandwidth capacity_bps) {
  util::require(n >= 2, "star needs at least 2 routers");
  Topology topo;
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_router();
  }
  for (std::size_t i = 1; i < n; ++i) {
    topo.add_duplex_link(0, static_cast<NodeId>(i), capacity_bps);
  }
  return topo;
}

Topology grid(std::size_t rows, std::size_t cols, Bandwidth capacity_bps) {
  util::require(rows >= 1 && cols >= 1 && rows * cols >= 2, "grid needs at least 2 routers");
  Topology topo;
  for (std::size_t i = 0; i < rows * cols; ++i) {
    topo.add_router();
  }
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        topo.add_duplex_link(id(r, c), id(r, c + 1), capacity_bps);
      }
      if (r + 1 < rows) {
        topo.add_duplex_link(id(r, c), id(r + 1, c), capacity_bps);
      }
    }
  }
  return topo;
}

Topology waxman(std::size_t n, double alpha, double beta, std::uint64_t seed,
                Bandwidth capacity_bps) {
  util::require(n >= 2, "waxman needs at least 2 routers");
  util::require(alpha > 0.0 && alpha <= 1.0, "waxman alpha must be in (0,1]");
  util::require(beta > 0.0 && beta <= 1.0, "waxman beta must be in (0,1]");
  des::RandomStream rng(seed);
  Topology topo;
  std::vector<std::pair<double, double>> position;
  position.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    topo.add_router();
    position.emplace_back(rng.uniform01(), rng.uniform01());
  }
  const auto distance = [&](std::size_t a, std::size_t b) {
    const double dx = position[a].first - position[b].first;
    const double dy = position[a].second - position[b].second;
    return std::sqrt(dx * dx + dy * dy);
  };
  // Random spanning tree first: node i attaches to a random earlier node.
  // Guarantees connectivity regardless of the probabilistic links below.
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = rng.uniform_index(i);
    topo.add_duplex_link(static_cast<NodeId>(j), static_cast<NodeId>(i), capacity_bps);
  }
  const double scale = beta * std::sqrt(2.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (topo.find_link(static_cast<NodeId>(i), static_cast<NodeId>(j)).has_value()) {
        continue;
      }
      const double p = alpha * std::exp(-distance(i, j) / scale);
      if (rng.bernoulli(p)) {
        topo.add_duplex_link(static_cast<NodeId>(i), static_cast<NodeId>(j), capacity_bps);
      }
    }
  }
  util::ensure(topo.connected(), "waxman construction must yield a connected topology");
  return topo;
}

}  // namespace anyqos::net::topologies
