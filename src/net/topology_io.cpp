#include "src/net/topology_io.h"

#include <fstream>
#include <sstream>

#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::net {

namespace {

[[noreturn]] void fail_at(std::size_t line, const std::string& message) {
  throw std::invalid_argument("topology line " + std::to_string(line) + ": " + message);
}

}  // namespace

Topology parse_topology(std::istream& in) {
  Topology topo;
  std::string raw;
  std::size_t line_number = 0;
  while (std::getline(in, raw)) {
    ++line_number;
    const std::string_view stripped = util::trim(raw);
    if (stripped.empty() || stripped.front() == '#') {
      continue;
    }
    std::istringstream fields{std::string(stripped)};
    std::string keyword;
    fields >> keyword;
    if (keyword == "node") {
      unsigned long long id = 0;
      if (!(fields >> id)) {
        fail_at(line_number, "node needs an id");
      }
      if (id != topo.router_count()) {
        fail_at(line_number, "node ids must be dense and in order (expected " +
                                 std::to_string(topo.router_count()) + ", got " +
                                 std::to_string(id) + ")");
      }
      std::string name;
      fields >> name;  // optional
      topo.add_router(std::move(name));
    } else if (keyword == "link") {
      unsigned long long a = 0;
      unsigned long long b = 0;
      double capacity = 0.0;
      if (!(fields >> a >> b >> capacity)) {
        fail_at(line_number, "link needs: <a> <b> <capacity_bps>");
      }
      if (a >= topo.router_count() || b >= topo.router_count()) {
        fail_at(line_number, "link references an undeclared node");
      }
      if (capacity <= 0.0) {
        fail_at(line_number, "link capacity must be positive");
      }
      try {
        topo.add_duplex_link(static_cast<NodeId>(a), static_cast<NodeId>(b), capacity);
      } catch (const std::invalid_argument& error) {
        fail_at(line_number, error.what());
      }
    } else {
      fail_at(line_number, "unknown keyword '" + keyword + "'");
    }
    // Trailing garbage detection.
    std::string rest;
    if (fields >> rest) {
      fail_at(line_number, "unexpected trailing field '" + rest + "'");
    }
  }
  util::require(topo.router_count() > 0, "topology file declares no nodes");
  return topo;
}

Topology parse_topology_text(const std::string& text) {
  std::istringstream in(text);
  return parse_topology(in);
}

Topology load_topology(const std::string& path) {
  std::ifstream in(path);
  util::require(in.good(), "cannot open topology file: " + path);
  return parse_topology(in);
}

std::string topology_to_text(const Topology& topology) {
  std::ostringstream out;
  out << "# anyqos topology: " << topology.router_count() << " nodes, "
      << topology.duplex_link_count() << " duplex links\n";
  for (NodeId id = 0; id < topology.router_count(); ++id) {
    out << "node " << id;
    const std::string name = topology.router_name(id);
    std::string default_name = "r";  // append form: see Topology::router_name
    default_name += std::to_string(id);
    if (name != default_name) {
      out << ' ' << name;
    }
    out << '\n';
  }
  // Each duplex pair is stored as consecutive directed links; emit the
  // forward direction only.
  for (LinkId id = 0; id < topology.link_count(); id += 2) {
    const Arc& arc = topology.link(id);
    out << "link " << arc.from << ' ' << arc.to << ' ' << topology.capacity(id) << '\n';
  }
  return out.str();
}

void save_topology(const Topology& topology, const std::string& path) {
  std::ofstream out(path);
  util::require(out.good(), "cannot open file for writing: " + path);
  out << topology_to_text(topology);
  util::require(out.good(), "failed writing topology file: " + path);
}

}  // namespace anyqos::net
