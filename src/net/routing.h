// Routing algorithms over Topology.
//
// The paper assumes fixed per-(source, member) routes "obtained via the
// existing routing protocols" (Section 3) — we compute them with hop-count
// shortest paths and cache them in a RouteTable. The GDI baseline needs a
// feasibility search over *all* paths, provided by shortest_feasible_path.
// Widest-path and Yen's k-shortest-paths round out the substrate (used by
// probes and by ablations over alternative fixed-route sets).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "src/net/bandwidth.h"
#include "src/net/topology.h"

namespace anyqos::net {

/// Hop-count shortest path from `source` to `destination` using BFS.
/// Ties are broken deterministically: nodes are discovered following link-id
/// order, so the returned path is stable across runs.
/// Returns nullopt when no path exists.
std::optional<Path> shortest_path(const Topology& topology, NodeId source, NodeId destination);

/// Hop counts from `source` to every node (kUnreachable when disconnected).
inline constexpr std::size_t kUnreachable = static_cast<std::size_t>(-1);
std::vector<std::size_t> hop_distances(const Topology& topology, NodeId source);

/// Shortest path restricted to links with at least `bandwidth` available.
/// This is the GDI oracle's search: a flow is admissible iff such a path
/// exists to some group member. Returns nullopt when no feasible path exists.
std::optional<Path> shortest_feasible_path(const Topology& topology, const BandwidthLedger& ledger,
                                           NodeId source, NodeId destination, Bandwidth bandwidth);

/// Among `destinations`, returns the feasible path with the fewest hops
/// (ties broken toward the destination listed first). Nullopt when no
/// destination is reachable with `bandwidth` available on every link.
std::optional<Path> shortest_feasible_path_to_any(const Topology& topology,
                                                  const BandwidthLedger& ledger, NodeId source,
                                                  std::span<const NodeId> destinations,
                                                  Bandwidth bandwidth);

/// Maximum-bottleneck ("widest") path via a modified Dijkstra; among paths of
/// equal bottleneck prefers fewer hops. Returns nullopt when disconnected.
std::optional<Path> widest_path(const Topology& topology, const BandwidthLedger& ledger,
                                NodeId source, NodeId destination);

/// Yen's algorithm: up to `k` loopless shortest paths in non-decreasing hop
/// order. Deterministic. Used by route-set ablations.
std::vector<Path> k_shortest_paths(const Topology& topology, NodeId source, NodeId destination,
                                   std::size_t k);

/// Precomputed fixed routes from every node to a set of destinations,
/// mirroring the paper's fixed source->member route assumption.
class RouteTable {
 public:
  /// Computes routes from all routers to each of `destinations`.
  /// Throws std::invalid_argument if any pair is disconnected.
  RouteTable(const Topology& topology, std::vector<NodeId> destinations);

  /// The fixed route from `source` to destinations()[index].
  [[nodiscard]] const Path& route(NodeId source, std::size_t index) const;
  /// Hop count of route(source, index) — the paper's D_i.
  [[nodiscard]] std::size_t distance(NodeId source, std::size_t index) const;
  [[nodiscard]] const std::vector<NodeId>& destinations() const { return destinations_; }
  [[nodiscard]] std::size_t destination_count() const { return destinations_.size(); }

  /// Index of the destination with the shortest fixed route from `source`
  /// (ties toward the lower index) — the SP baseline's choice. Destinations
  /// left unreachable by the last recompute() are skipped; falls back to
  /// index 0 when nothing is reachable.
  [[nodiscard]] std::size_t shortest_destination(NodeId source) const;

  /// Recomputes every route over the surviving links: `duplex_up[link / 2]`
  /// says whether that duplex link is operational. Pairs the shrunk topology
  /// disconnects keep their previous (stale) path — so distance() stays
  /// defined for selectors — but has_route() turns false for them until a
  /// later recompute reconnects the pair. Deterministic: same BFS tie-break
  /// as the constructor, so recomputing with all links up reproduces the
  /// initial table exactly.
  void recompute(const Topology& topology, const std::vector<char>& duplex_up);

  /// True when the last (re)computation found a live route for the pair.
  /// Always true before the first recompute(): the constructor requires a
  /// connected topology.
  [[nodiscard]] bool has_route(NodeId source, std::size_t index) const;

 private:
  std::vector<NodeId> destinations_;
  std::size_t router_count_;
  std::vector<Path> routes_;     // router_count x destinations, row-major
  std::vector<char> reachable_;  // parallel to routes_; 0 after a partition
};

}  // namespace anyqos::net
