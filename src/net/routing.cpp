#include "src/net/routing.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <tuple>

#include "src/util/require.h"

namespace anyqos::net {

namespace {

/// BFS from `source`; `usable(link)` filters links. Fills parent-link array.
/// Returns per-node hop distances (kUnreachable where not visited).
template <typename LinkFilter>
std::vector<std::size_t> bfs(const Topology& topology, NodeId source, LinkFilter usable,
                             std::vector<LinkId>* parent_link) {
  const std::size_t n = topology.router_count();
  util::require(source < n, "source out of range");
  std::vector<std::size_t> dist(n, kUnreachable);
  if (parent_link != nullptr) {
    parent_link->assign(n, kInvalidLink);
  }
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const LinkId id : topology.graph().out_arcs(u)) {
      if (!usable(id)) {
        continue;
      }
      const NodeId v = topology.link(id).to;
      if (dist[v] != kUnreachable) {
        continue;
      }
      dist[v] = dist[u] + 1;
      if (parent_link != nullptr) {
        (*parent_link)[v] = id;
      }
      frontier.push(v);
    }
  }
  return dist;
}

Path unwind(const Topology& topology, NodeId source, NodeId destination,
            const std::vector<LinkId>& parent_link) {
  Path path;
  path.source = source;
  path.destination = destination;
  NodeId at = destination;
  while (at != source) {
    const LinkId id = parent_link[at];
    util::ensure(id != kInvalidLink, "unwind hit a node with no parent");
    path.links.push_back(id);
    at = topology.link(id).from;
  }
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

}  // namespace

std::optional<Path> shortest_path(const Topology& topology, NodeId source, NodeId destination) {
  util::require(destination < topology.router_count(), "destination out of range");
  std::vector<LinkId> parent;
  const auto dist = bfs(topology, source, [](LinkId) { return true; }, &parent);
  if (dist[destination] == kUnreachable) {
    return std::nullopt;
  }
  return unwind(topology, source, destination, parent);
}

std::vector<std::size_t> hop_distances(const Topology& topology, NodeId source) {
  return bfs(topology, source, [](LinkId) { return true; }, nullptr);
}

std::optional<Path> shortest_feasible_path(const Topology& topology, const BandwidthLedger& ledger,
                                           NodeId source, NodeId destination, Bandwidth bandwidth) {
  util::require(destination < topology.router_count(), "destination out of range");
  util::require(bandwidth > 0.0, "bandwidth must be positive");
  std::vector<LinkId> parent;
  const auto usable = [&](LinkId id) { return ledger.available(id) >= bandwidth; };
  const auto dist = bfs(topology, source, usable, &parent);
  if (dist[destination] == kUnreachable) {
    return std::nullopt;
  }
  return unwind(topology, source, destination, parent);
}

std::optional<Path> shortest_feasible_path_to_any(const Topology& topology,
                                                  const BandwidthLedger& ledger, NodeId source,
                                                  std::span<const NodeId> destinations,
                                                  Bandwidth bandwidth) {
  util::require(!destinations.empty(), "destination set must be non-empty");
  util::require(bandwidth > 0.0, "bandwidth must be positive");
  std::vector<LinkId> parent;
  const auto usable = [&](LinkId id) { return ledger.available(id) >= bandwidth; };
  const auto dist = bfs(topology, source, usable, &parent);
  std::optional<NodeId> best;
  std::size_t best_dist = kUnreachable;
  for (const NodeId d : destinations) {
    util::require(d < topology.router_count(), "destination out of range");
    if (dist[d] < best_dist) {
      best = d;
      best_dist = dist[d];
    }
  }
  if (!best.has_value()) {
    return std::nullopt;
  }
  return unwind(topology, source, *best, parent);
}

std::optional<Path> widest_path(const Topology& topology, const BandwidthLedger& ledger,
                                NodeId source, NodeId destination) {
  const std::size_t n = topology.router_count();
  util::require(source < n && destination < n, "endpoint out of range");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> width(n, -1.0);
  std::vector<std::size_t> hops(n, kUnreachable);
  std::vector<LinkId> parent(n, kInvalidLink);
  // Max-heap on (width, -hops); deterministic tie-break on node id.
  using State = std::tuple<double, std::size_t, NodeId>;  // (width, hops, node)
  const auto better = [](const State& a, const State& b) {
    if (std::get<0>(a) != std::get<0>(b)) {
      return std::get<0>(a) < std::get<0>(b);  // larger width first
    }
    if (std::get<1>(a) != std::get<1>(b)) {
      return std::get<1>(a) > std::get<1>(b);  // fewer hops first
    }
    return std::get<2>(a) > std::get<2>(b);
  };
  std::priority_queue<State, std::vector<State>, decltype(better)> heap(better);
  width[source] = kInf;
  hops[source] = 0;
  heap.push({kInf, 0, source});
  while (!heap.empty()) {
    const auto [w, h, u] = heap.top();
    heap.pop();
    if (w < width[u] || (w == width[u] && h > hops[u])) {
      continue;  // stale entry
    }
    for (const LinkId id : topology.graph().out_arcs(u)) {
      const NodeId v = topology.link(id).to;
      const double cand_width = std::min(w, ledger.available(id));
      const std::size_t cand_hops = h + 1;
      if (cand_width > width[v] || (cand_width == width[v] && cand_hops < hops[v])) {
        width[v] = cand_width;
        hops[v] = cand_hops;
        parent[v] = id;
        heap.push({cand_width, cand_hops, v});
      }
    }
  }
  if (width[destination] < 0.0) {
    return std::nullopt;
  }
  if (source == destination) {
    Path path;
    path.source = source;
    path.destination = destination;
    return path;
  }
  return unwind(topology, source, destination, parent);
}

std::vector<Path> k_shortest_paths(const Topology& topology, NodeId source, NodeId destination,
                                   std::size_t k) {
  util::require(k >= 1, "k must be at least 1");
  std::vector<Path> result;
  auto first = shortest_path(topology, source, destination);
  if (!first.has_value()) {
    return result;
  }
  result.push_back(std::move(*first));

  // Candidate set ordered by (hops, node sequence) for determinism.
  struct Candidate {
    std::vector<NodeId> nodes;
    Path path;
  };
  const auto path_nodes = [&](const Path& p) {
    std::vector<NodeId> nodes{p.source};
    for (const LinkId id : p.links) {
      nodes.push_back(topology.link(id).to);
    }
    return nodes;
  };
  const auto candidate_less = [](const Candidate& a, const Candidate& b) {
    if (a.path.hops() != b.path.hops()) {
      return a.path.hops() < b.path.hops();
    }
    return a.nodes < b.nodes;
  };
  std::vector<Candidate> candidates;

  while (result.size() < k) {
    const Path& last = result.back();
    const std::vector<NodeId> last_nodes = path_nodes(last);
    // Spur from every node of the previous path (Yen).
    for (std::size_t spur = 0; spur + 1 < last_nodes.size(); ++spur) {
      const NodeId spur_node = last_nodes[spur];
      // Links removed: next link of any accepted path sharing the root.
      std::set<LinkId> banned_links;
      for (const Path& p : result) {
        const std::vector<NodeId> nodes = path_nodes(p);
        if (nodes.size() > spur &&
            std::equal(nodes.begin(), nodes.begin() + static_cast<std::ptrdiff_t>(spur + 1),
                       last_nodes.begin())) {
          banned_links.insert(p.links[spur]);
        }
      }
      // Nodes removed: the root path nodes except the spur node.
      std::set<NodeId> banned_nodes(last_nodes.begin(),
                                    last_nodes.begin() + static_cast<std::ptrdiff_t>(spur));
      // BFS avoiding banned links/nodes.
      std::vector<LinkId> parent;
      const auto usable = [&](LinkId id) {
        if (banned_links.count(id) != 0) {
          return false;
        }
        const Arc& arc = topology.link(id);
        return banned_nodes.count(arc.to) == 0 && banned_nodes.count(arc.from) == 0;
      };
      const auto dist = bfs(topology, spur_node, usable, &parent);
      if (dist[destination] == kUnreachable) {
        continue;
      }
      Path spur_path = unwind(topology, spur_node, destination, parent);
      // Total path = root (links 0..spur-1 of last) + spur path.
      Path total;
      total.source = source;
      total.destination = destination;
      total.links.assign(last.links.begin(), last.links.begin() + static_cast<std::ptrdiff_t>(spur));
      total.links.insert(total.links.end(), spur_path.links.begin(), spur_path.links.end());
      Candidate cand{path_nodes(total), std::move(total)};
      // Deduplicate against accepted paths and existing candidates.
      bool duplicate = false;
      for (const Path& p : result) {
        if (p.links == cand.path.links) {
          duplicate = true;
          break;
        }
      }
      for (const Candidate& c : candidates) {
        if (c.path.links == cand.path.links) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        candidates.push_back(std::move(cand));
      }
    }
    if (candidates.empty()) {
      break;
    }
    const auto best = std::min_element(candidates.begin(), candidates.end(), candidate_less);
    result.push_back(std::move(best->path));
    candidates.erase(best);
  }
  return result;
}

RouteTable::RouteTable(const Topology& topology, std::vector<NodeId> destinations)
    : destinations_(std::move(destinations)), router_count_(topology.router_count()) {
  util::require(!destinations_.empty(), "route table needs at least one destination");
  routes_.reserve(router_count_ * destinations_.size());
  for (NodeId s = 0; s < router_count_; ++s) {
    for (const NodeId d : destinations_) {
      auto path = shortest_path(topology, s, d);
      util::require(path.has_value(), "topology is disconnected: no route from " +
                                          std::to_string(s) + " to " + std::to_string(d));
      routes_.push_back(std::move(*path));
    }
  }
  reachable_.assign(routes_.size(), 1);
}

void RouteTable::recompute(const Topology& topology, const std::vector<char>& duplex_up) {
  util::require(topology.router_count() == router_count_, "topology shape changed");
  util::require(duplex_up.size() == topology.link_count() / 2,
                "duplex_up must have one entry per duplex link");
  const auto usable = [&](LinkId id) { return duplex_up[id / 2] != 0; };
  std::vector<LinkId> parent;
  for (NodeId s = 0; s < router_count_; ++s) {
    const auto dist = bfs(topology, s, usable, &parent);
    for (std::size_t i = 0; i < destinations_.size(); ++i) {
      const std::size_t idx = s * destinations_.size() + i;
      if (dist[destinations_[i]] == kUnreachable) {
        reachable_[idx] = 0;  // keep the stale path; distance() stays defined
      } else {
        routes_[idx] = unwind(topology, s, destinations_[i], parent);
        reachable_[idx] = 1;
      }
    }
  }
}

bool RouteTable::has_route(NodeId source, std::size_t index) const {
  util::require(source < router_count_, "source out of range");
  util::require(index < destinations_.size(), "destination index out of range");
  return reachable_[source * destinations_.size() + index] != 0;
}

const Path& RouteTable::route(NodeId source, std::size_t index) const {
  util::require(source < router_count_, "source out of range");
  util::require(index < destinations_.size(), "destination index out of range");
  return routes_[source * destinations_.size() + index];
}

std::size_t RouteTable::distance(NodeId source, std::size_t index) const {
  return route(source, index).hops();
}

std::size_t RouteTable::shortest_destination(NodeId source) const {
  std::size_t best = 0;
  std::size_t best_hops = kUnreachable;
  for (std::size_t i = 0; i < destinations_.size(); ++i) {
    if (!has_route(source, i)) {
      continue;
    }
    const std::size_t hops = distance(source, i);
    if (hops < best_hops) {
      best = i;
      best_hops = hops;
    }
  }
  return best;
}

}  // namespace anyqos::net
