#include "src/net/metrics.h"

#include <algorithm>

#include "src/net/routing.h"
#include "src/util/require.h"

namespace anyqos::net {

std::size_t diameter(const Topology& topology) {
  util::require(topology.router_count() >= 1, "diameter of an empty topology");
  std::size_t longest = 0;
  for (NodeId source = 0; source < topology.router_count(); ++source) {
    const auto dist = hop_distances(topology, source);
    for (const std::size_t d : dist) {
      util::require(d != kUnreachable, "diameter requires a connected topology");
      longest = std::max(longest, d);
    }
  }
  return longest;
}

std::vector<std::size_t> degrees(const Topology& topology) {
  std::vector<std::size_t> result(topology.router_count(), 0);
  for (NodeId node = 0; node < topology.router_count(); ++node) {
    result[node] = topology.graph().out_arcs(node).size();
  }
  return result;
}

double average_degree(const Topology& topology) {
  util::require(topology.router_count() >= 1, "average degree of an empty topology");
  // Each duplex link contributes one outgoing arc at both endpoints.
  return 2.0 * static_cast<double>(topology.duplex_link_count()) /
         static_cast<double>(topology.router_count());
}

double mean_distance(const Topology& topology) {
  const std::size_t n = topology.router_count();
  util::require(n >= 2, "mean distance needs at least two routers");
  double total = 0.0;
  std::size_t pairs = 0;
  for (NodeId source = 0; source < n; ++source) {
    const auto dist = hop_distances(topology, source);
    for (NodeId dest = 0; dest < n; ++dest) {
      if (dest == source) {
        continue;
      }
      util::require(dist[dest] != kUnreachable, "mean distance requires connectivity");
      total += static_cast<double>(dist[dest]);
      ++pairs;
    }
  }
  return total / static_cast<double>(pairs);
}

}  // namespace anyqos::net
