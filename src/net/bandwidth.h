// Bandwidth accounting: tracks the capacity available for anycast flows on
// every directed link ("Remaining Capacity / Available Bandwidth AB_l" in
// the paper's Section 3) and performs atomic path reservations.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/topology.h"

namespace anyqos::net {

/// Observes every mutation of a BandwidthLedger. Implemented by
/// instrumentation such as audit::InvariantAuditor to shadow the ledger's
/// state; observers must not mutate the ledger from inside a callback.
class LedgerObserver {
 public:
  virtual ~LedgerObserver() = default;

  /// A successful reserve() committed `amount` on every link of `path`.
  virtual void on_reserve(const Path& path, Bandwidth amount) = 0;
  /// A release() of `amount` on every link of `path` is about to commit
  /// (the ledger has validated its own bounds but not yet mutated, so a
  /// throwing observer leaves the ledger untouched).
  virtual void on_release(const Path& path, Bandwidth amount) = 0;
  /// A narrow() is about to shrink a reservation held on `from` down to its
  /// sub-path `to` (releasing the difference). The default decomposes into
  /// on_release(from) + on_reserve(to), which keeps any shadow accounting
  /// exact; override to observe the narrow as a single re-keyed event.
  virtual void on_reservation_narrowed(const Path& from, const Path& to, Bandwidth amount);
  /// Directed link `id` was taken out of service.
  virtual void on_link_failed(LinkId /*id*/) {}
  /// Directed link `id` was returned to service.
  virtual void on_link_restored(LinkId /*id*/) {}
};

/// Per-link available-bandwidth ledger with atomic path reserve/release.
///
/// Constructed with an `anycast_share` in (0,1]: only that fraction of each
/// raw link capacity is usable by anycast flows (the paper reserves 20% of
/// each 100 Mbit/s link). The ledger enforces 0 <= available <= capacity as a
/// hard invariant; violations throw rather than corrupt the simulation.
class BandwidthLedger {
 public:
  /// `topology` must outlive the ledger.
  BandwidthLedger(const Topology& topology, double anycast_share);

  /// Capacity usable by anycast flows on directed link `id`.
  [[nodiscard]] Bandwidth capacity(LinkId id) const;
  /// Bandwidth currently unreserved on directed link `id` (AB_l).
  [[nodiscard]] Bandwidth available(LinkId id) const;
  /// Bandwidth currently reserved on directed link `id`.
  [[nodiscard]] Bandwidth reserved(LinkId id) const;
  /// reserved/capacity in [0,1].
  [[nodiscard]] double utilization(LinkId id) const;

  /// Minimum available bandwidth over the links of `path` (the paper's
  /// route bandwidth B_i, eq. (11)). Empty paths have infinite bottleneck.
  [[nodiscard]] Bandwidth bottleneck(const Path& path) const;

  /// True when every link of `path` has at least `amount` available.
  [[nodiscard]] bool can_reserve(const Path& path, Bandwidth amount) const;

  /// Atomically reserves `amount` on every link of `path`. Returns false and
  /// changes nothing when any link lacks capacity.
  [[nodiscard]] bool reserve(const Path& path, Bandwidth amount);

  /// Releases a previous reservation of `amount` on every link of `path`.
  /// Throws InvariantError when releasing more than was reserved.
  void release(const Path& path, Bandwidth amount);

  /// Shrinks a reservation of `amount` held on `from` down to `to`: every
  /// link of `from` not in `to` (multiset difference) gets `amount` back;
  /// links in `to` stay reserved. `to.links` must be a sub-multiset of
  /// `from.links` (an empty `to` releases everything, like release()).
  /// Used by path repair when part of a route dies: the surviving remnant
  /// stays reserved while the broken flow waits for re-signaling.
  void narrow(const Path& from, const Path& to, Bandwidth amount);

  /// Number of directed links tracked.
  [[nodiscard]] std::size_t link_count() const { return available_.size(); }
  /// The topology this ledger accounts for.
  [[nodiscard]] const Topology& topology() const { return *topology_; }

  /// Total reserved bandwidth summed over all directed links (diagnostics).
  [[nodiscard]] Bandwidth total_reserved() const;

  // --- Fault injection (Section 3 notes the no-fault assumption "can be
  // --- extended"; these hooks support the fault-tolerance extension).

  /// Takes directed link `id` out of service: capacity and availability drop
  /// to zero, so reservations and feasibility checks treat it as full.
  /// Requires that no bandwidth is currently reserved on it (terminate the
  /// flows crossing it first).
  void fail_link(LinkId id);

  /// Returns a failed link to service at its original capacity, fully idle.
  void restore_link(LinkId id);

  /// True when the link is currently failed.
  [[nodiscard]] bool is_failed(LinkId id) const;

  /// Registers `observer` to see every subsequent mutation (nullptr
  /// detaches). At most one observer; `observer` must outlive the ledger or
  /// be detached first.
  void set_observer(LedgerObserver* observer) { observer_ = observer; }
  [[nodiscard]] LedgerObserver* observer() const { return observer_; }

 private:
  void check_link(LinkId id) const;

  const Topology* topology_;
  std::vector<Bandwidth> capacity_;
  std::vector<Bandwidth> available_;
  std::vector<Bandwidth> nominal_capacity_;  // capacity before any failure
  LedgerObserver* observer_ = nullptr;
};

}  // namespace anyqos::net
