// Generic directed-graph structure underlying the network topology.
//
// Kept separate from Topology so that routing algorithms and connectivity
// checks can be unit-tested on bare graphs, and so alternative substrates
// (e.g. overlay graphs) can reuse them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace anyqos::net {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
/// Sentinel for "no link".
inline constexpr LinkId kInvalidLink = static_cast<LinkId>(-1);

/// A directed edge. Graph stores arcs; an undirected physical link is two
/// arcs created together (see Topology::add_duplex_link).
struct Arc {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
};

/// Compact directed multigraph with O(1) arc lookup and per-node adjacency.
///
/// Arcs are identified by dense LinkIds in insertion order, which the rest of
/// the library relies on for deterministic iteration.
class Graph {
 public:
  /// Creates `n` isolated nodes with ids 0..n-1.
  explicit Graph(std::size_t node_count = 0);

  /// Appends one node; returns its id.
  NodeId add_node();
  /// Appends a directed arc; both endpoints must exist. Returns its id.
  LinkId add_arc(NodeId from, NodeId to);

  [[nodiscard]] std::size_t node_count() const { return out_.size(); }
  [[nodiscard]] std::size_t arc_count() const { return arcs_.size(); }

  /// Endpoints of arc `id`.
  [[nodiscard]] const Arc& arc(LinkId id) const;
  /// Outgoing arc ids of `node`, in insertion order.
  [[nodiscard]] std::span<const LinkId> out_arcs(NodeId node) const;
  /// Incoming arc ids of `node`, in insertion order.
  [[nodiscard]] std::span<const LinkId> in_arcs(NodeId node) const;

  /// First arc from `from` to `to`, or kInvalidLink.
  [[nodiscard]] LinkId find_arc(NodeId from, NodeId to) const;

  /// True when every node can reach every other node along directed arcs.
  [[nodiscard]] bool strongly_connected() const;

 private:
  void check_node(NodeId node) const;

  std::vector<Arc> arcs_;
  std::vector<std::vector<LinkId>> out_;
  std::vector<std::vector<LinkId>> in_;
};

}  // namespace anyqos::net
