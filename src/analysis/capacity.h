// Analytic capacity solving: invert the AP(lambda) curve.
//
// The simulation-side capacity_planning example bisects noisy simulation
// runs; the fixed-point analysis makes the same question exact and instant
// for the analyzable systems (<ED,1>, <ED,R>, SP): the largest total arrival
// rate at which the admission probability still meets a target.
#pragma once

#include <cstddef>

#include "src/analysis/ap_analysis.h"
#include "src/analysis/retry_extension.h"

namespace anyqos::analysis {

/// Which analyzable system the capacity question is about.
enum class AnalyzedSystem {
  kEd1,     ///< <ED,1>  (Appendix A)
  kEdRetry, ///< <ED,R>  (retry-extension approximation)
  kSp,      ///< SP baseline (Appendix A)
};

struct CapacityQuery {
  AnalyzedSystem system = AnalyzedSystem::kEd1;
  std::size_t max_tries = 2;       ///< R, used by kEdRetry only
  double target_ap = 0.95;         ///< required admission probability, in (0,1)
  double lambda_low = 0.1;         ///< bracket: AP(low) must be >= target
  double lambda_high = 200.0;      ///< bracket: AP(high) must be < target
  double tolerance = 0.01;         ///< bisection width on lambda
  FixedPointOptions fixed_point;
};

/// AP of the queried system at a specific rate.
double analytic_ap(const AnalyticModel& model, AnalyzedSystem system, std::size_t max_tries,
                   const FixedPointOptions& options);

/// Largest lambda with AP >= target (bisection; AP is monotone decreasing in
/// lambda for these systems). `model.lambda_total` is ignored. Throws
/// std::invalid_argument when the bracket does not straddle the target.
double lambda_at_target_ap(AnalyticModel model, const CapacityQuery& query);

}  // namespace anyqos::analysis
