#include "src/analysis/erlang.h"

#include "src/util/require.h"

namespace anyqos::analysis {

double erlang_b(double offered_erlangs, std::size_t capacity_circuits) {
  util::require(offered_erlangs >= 0.0, "offered load must be non-negative");
  if (capacity_circuits == 0) {
    return 1.0;
  }
  if (offered_erlangs == 0.0) {
    return 0.0;
  }
  double blocking = 1.0;
  for (std::size_t c = 1; c <= capacity_circuits; ++c) {
    blocking = offered_erlangs * blocking /
               (static_cast<double>(c) + offered_erlangs * blocking);
  }
  return blocking;
}

std::size_t dimension_capacity(double offered_erlangs, double target_blocking) {
  util::require(offered_erlangs >= 0.0, "offered load must be non-negative");
  util::require(target_blocking > 0.0 && target_blocking < 1.0,
                "target blocking must be in (0,1)");
  if (offered_erlangs == 0.0) {
    return 0;  // no traffic, nothing to block
  }
  // Same recursion as erlang_b, growing C until the target is met. The loop
  // terminates because Erlang-B decreases to 0 as capacity grows.
  double blocking = 1.0;
  std::size_t c = 0;
  while (blocking > target_blocking) {
    ++c;
    blocking = offered_erlangs * blocking /
               (static_cast<double>(c) + offered_erlangs * blocking);
  }
  return c;
}

}  // namespace anyqos::analysis
