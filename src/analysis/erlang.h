// Exact Erlang-B blocking.
//
// A link with capacity C circuits offered Poisson load v erlangs with
// blocked-calls-cleared behaves as an M/M/C/C queue; its blocking
// probability is the Erlang-B formula. The paper approximates this function
// with the UAA (see uaa.h); the exact recursion here is the ground truth the
// tests validate UAA against, and an alternative L() for the fixed point.
#pragma once

#include <cstddef>

namespace anyqos::analysis {

/// Exact Erlang-B blocking probability B(v, C) via the numerically stable
/// recursion B_0 = 1, B_c = v B_{c-1} / (c + v B_{c-1}).
/// `offered_erlangs` >= 0; capacity >= 0 (capacity 0 blocks everything).
double erlang_b(double offered_erlangs, std::size_t capacity_circuits);

/// Smallest capacity whose Erlang-B blocking is <= `target_blocking` for the
/// given load (simple dimensioning helper used by the capacity-planning
/// example). target_blocking in (0,1).
std::size_t dimension_capacity(double offered_erlangs, double target_blocking);

}  // namespace anyqos::analysis
