#include "src/analysis/fixed_point.h"

#include <algorithm>
#include <cmath>

#include "src/analysis/erlang.h"
#include "src/analysis/uaa.h"
#include "src/util/require.h"

namespace anyqos::analysis {

namespace {

double link_blocking(BlockingModel model, double load, double capacity) {
  switch (model) {
    case BlockingModel::kUaa:
      return uaa_blocking(load, capacity);
    case BlockingModel::kErlangB:
      return erlang_b(load, static_cast<std::size_t>(std::floor(capacity)));
  }
  util::unreachable("BlockingModel");
}

}  // namespace

FixedPointResult solve_fixed_point(std::size_t link_count,
                                   const std::vector<double>& capacity_circuits,
                                   const std::vector<RouteLoad>& routes,
                                   const FixedPointOptions& options) {
  util::require(capacity_circuits.size() == link_count,
                "capacity vector must cover every link");
  util::require(options.tolerance > 0.0, "tolerance must be positive");
  util::require(options.damping > 0.0 && options.damping <= 1.0, "damping must be in (0,1]");
  util::require(options.max_iterations >= 1, "need at least one iteration");
  for (const double c : capacity_circuits) {
    util::require(c >= 1.0, "link capacities must be at least one circuit");
  }
  for (const RouteLoad& route : routes) {
    util::require(route.offered_erlangs >= 0.0, "route loads must be non-negative");
    for (const net::LinkId id : route.links) {
      util::require(id < link_count, "route references a link out of range");
    }
  }

  FixedPointResult result;
  result.link_blocking.assign(link_count, 0.0);
  result.link_reduced_load.assign(link_count, 0.0);

  std::vector<double> next_blocking(link_count, 0.0);
  for (std::size_t iteration = 1; iteration <= options.max_iterations; ++iteration) {
    // Eq. (18)/(20): reduced loads from current blocking estimates.
    std::vector<double>& loads = result.link_reduced_load;
    std::fill(loads.begin(), loads.end(), 0.0);
    for (const RouteLoad& route : routes) {
      if (route.offered_erlangs == 0.0) {
        continue;
      }
      // prod over the whole route, divided out per link (guarding B == 1).
      for (const net::LinkId target : route.links) {
        double thinned = route.offered_erlangs;
        for (const net::LinkId other : route.links) {
          if (other != target) {
            thinned *= 1.0 - result.link_blocking[other];
          }
        }
        loads[target] += thinned;
      }
    }
    // Eq. (19)/(21): new blocking from reduced loads, with damping.
    double max_change = 0.0;
    for (std::size_t l = 0; l < link_count; ++l) {
      const double fresh = link_blocking(options.model, loads[l], capacity_circuits[l]);
      const double damped =
          options.damping * fresh + (1.0 - options.damping) * result.link_blocking[l];
      max_change = std::max(max_change, std::abs(damped - result.link_blocking[l]));
      next_blocking[l] = damped;
    }
    result.link_blocking.swap(next_blocking);
    result.iterations = iteration;
    if (max_change < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Eq. (17): route rejection probabilities under link independence.
  result.route_rejection.reserve(routes.size());
  for (const RouteLoad& route : routes) {
    double pass = 1.0;
    for (const net::LinkId id : route.links) {
      pass *= 1.0 - result.link_blocking[id];
    }
    result.route_rejection.push_back(1.0 - pass);
  }
  return result;
}

double admission_probability(const std::vector<RouteLoad>& routes,
                             const std::vector<double>& route_rejection) {
  util::require(routes.size() == route_rejection.size(),
                "route rejection vector must align with routes");
  double admitted = 0.0;
  double offered = 0.0;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    admitted += routes[i].offered_erlangs * (1.0 - route_rejection[i]);
    offered += routes[i].offered_erlangs;
  }
  util::require(offered > 0.0, "admission probability needs positive offered load");
  return admitted / offered;
}

}  // namespace anyqos::analysis
