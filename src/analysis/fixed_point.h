// Reduced-load (Erlang) fixed point solver (paper Appendix A.2, eqs. (18)-(22)).
//
// Under the link-independence assumption, the load each route offers a link
// is "thinned" by the blocking of the route's other links:
//     v_l = sum_{routes r through l} rho_r * prod_{m in r, m != l} (1 - B_m)
//     B_l = L(v_l, C_l)
// iterated (with damping) until convergence. Route rejection then follows
// eq. (17): L_r = 1 - prod_{l in r} (1 - B_l).
#pragma once

#include <cstddef>
#include <vector>

#include "src/net/graph.h"

namespace anyqos::analysis {

/// One route and the Poisson load (erlangs, in flow units) offered to it.
struct RouteLoad {
  std::vector<net::LinkId> links;  ///< directed links the route crosses
  double offered_erlangs = 0.0;    ///< rho_{s,r}
};

/// Which L(v, C) the fixed point evaluates.
enum class BlockingModel {
  kUaa,      ///< the paper's uniform asymptotic approximation (Appendix A.2)
  kErlangB,  ///< exact Erlang-B (capacity rounded down to whole circuits)
};

struct FixedPointOptions {
  BlockingModel model = BlockingModel::kUaa;
  double tolerance = 1e-10;        ///< max |B^{i+1} - B^i| to declare convergence
  std::size_t max_iterations = 20'000;
  /// New-iterate weight in (0,1]; < 1 damps oscillation of the iteration.
  double damping = 0.5;
};

struct FixedPointResult {
  std::vector<double> link_blocking;      ///< B_l per directed link
  std::vector<double> link_reduced_load;  ///< v_l per directed link
  std::vector<double> route_rejection;    ///< L_r per input route (eq. 17)
  std::size_t iterations = 0;
  bool converged = false;
};

/// Solves the fixed point for `link_count` links with per-link capacities (in
/// circuits, i.e. units of the flow bandwidth) and the given offered routes.
/// Links never referenced by a route keep B_l = 0.
FixedPointResult solve_fixed_point(std::size_t link_count,
                                   const std::vector<double>& capacity_circuits,
                                   const std::vector<RouteLoad>& routes,
                                   const FixedPointOptions& options);

/// Network admission probability, eq. (15): the load-weighted average of the
/// per-route admission probabilities. `route_rejection` must align with
/// `routes`. Routes with zero offered load contribute nothing.
double admission_probability(const std::vector<RouteLoad>& routes,
                             const std::vector<double>& route_rejection);

}  // namespace anyqos::analysis
