// Mean-field analysis of <WD/D+B,1> (heuristic extension).
//
// Appendix A covers <ED,1> and SP, whose route loads are load-independent.
// WD/D+B's weights depend on *instantaneous* route bottlenecks, which a
// reduced-load model cannot represent exactly. The mean-field approximation
// replaces the instantaneous weights with their stationary means:
//
//   w_{s,i} ∝ E[B_i] / D_i,   E[B_i] ≈ min_l (C_l − carried_l)  (route i)
//
// and iterates: weights -> route loads -> Erlang fixed point -> mean free
// capacity -> weights, until the weights stabilize. The result captures
// WD/D+B's *static* load rebalancing but not its *dynamic* avoidance of
// momentarily-full routes, so it systematically lower-bounds the simulated
// <WD/D+B,1> while upper-bounding <ED,1> — the gap between the two is a
// measurement of how much the instantaneous bandwidth information is worth
// (reported in EXPERIMENTS.md).
#pragma once

#include "src/analysis/ap_analysis.h"

namespace anyqos::analysis {

struct MeanFieldOptions {
  FixedPointOptions fixed_point;
  double outer_tolerance = 1e-6;      ///< max weight change between rounds
  std::size_t max_outer_iterations = 500;
  /// New-weights blend factor in (0,1]; the weight<->load feedback loop
  /// oscillates near the saturation knee unless damped well below 1.
  double damping = 0.15;
};

struct MeanFieldAnalysis {
  double admission_probability = 0.0;
  /// Stationary selection weights, [source-index x member-index] row-major.
  std::vector<double> weights;
  std::size_t outer_iterations = 0;
  bool converged = false;
};

/// Approximate AP of <WD/D+B,1> on `model`.
MeanFieldAnalysis analyze_wdb1_meanfield(const AnalyticModel& model,
                                         const MeanFieldOptions& options);

}  // namespace anyqos::analysis
