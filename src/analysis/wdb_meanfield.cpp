#include "src/analysis/wdb_meanfield.h"

#include <algorithm>
#include <cmath>

#include "src/util/require.h"

namespace anyqos::analysis {

MeanFieldAnalysis analyze_wdb1_meanfield(const AnalyticModel& model,
                                         const MeanFieldOptions& options) {
  util::require(model.topology != nullptr, "analytic model needs a topology");
  util::require(!model.sources.empty(), "analytic model needs sources");
  util::require(!model.members.empty(), "analytic model needs group members");
  util::require(model.lambda_total > 0.0, "arrival rate must be positive");
  util::require(options.damping > 0.0 && options.damping <= 1.0, "damping must be in (0,1]");
  util::require(options.outer_tolerance > 0.0, "tolerance must be positive");

  const net::RouteTable table(*model.topology, model.members);
  const std::size_t num_sources = model.sources.size();
  const std::size_t k = model.members.size();
  const double rho_s = model.per_source_erlangs();
  const auto capacities = model.capacity_circuits();

  // Fixed route geometry.
  std::vector<RouteLoad> routes(num_sources * k);
  std::vector<double> inv_distance(num_sources * k);
  for (std::size_t s = 0; s < num_sources; ++s) {
    for (std::size_t i = 0; i < k; ++i) {
      const net::Path& path = table.route(model.sources[s], i);
      routes[s * k + i].links = path.links;
      inv_distance[s * k + i] =
          1.0 / static_cast<double>(std::max<std::size_t>(path.hops(), 1));
    }
  }

  MeanFieldAnalysis analysis;
  // Start from pure inverse-distance weights (idle network: all B_i equal).
  analysis.weights.assign(num_sources * k, 0.0);
  for (std::size_t s = 0; s < num_sources; ++s) {
    double total = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      total += inv_distance[s * k + i];
    }
    for (std::size_t i = 0; i < k; ++i) {
      analysis.weights[s * k + i] = inv_distance[s * k + i] / total;
    }
  }

  FixedPointResult fp;
  for (std::size_t outer = 1; outer <= options.max_outer_iterations; ++outer) {
    analysis.outer_iterations = outer;
    // Route loads implied by the current stationary weights (single try).
    for (std::size_t r = 0; r < routes.size(); ++r) {
      routes[r].offered_erlangs = rho_s * analysis.weights[r];
    }
    fp = solve_fixed_point(model.topology->link_count(), capacities, routes,
                           options.fixed_point);

    // Mean free capacity per link (circuits): C_l - carried_l, where the
    // carried load is the thinned offered load that was not blocked.
    std::vector<double> free_capacity(capacities);
    for (std::size_t l = 0; l < free_capacity.size(); ++l) {
      const double carried = fp.link_reduced_load[l] * (1.0 - fp.link_blocking[l]);
      free_capacity[l] = std::max(capacities[l] - carried, 0.0);
    }

    // New weights from mean route bottlenecks over distance (eq. 12 with
    // E[B_i] in place of B_i).
    double max_change = 0.0;
    for (std::size_t s = 0; s < num_sources; ++s) {
      std::vector<double> raw(k, 0.0);
      double total = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        double bottleneck = std::numeric_limits<double>::infinity();
        for (const net::LinkId l : routes[s * k + i].links) {
          bottleneck = std::min(bottleneck, free_capacity[l]);
        }
        if (!std::isfinite(bottleneck)) {
          bottleneck = capacities.empty() ? 1.0 : capacities[0];  // empty route
        }
        raw[i] = bottleneck * inv_distance[s * k + i];
        total += raw[i];
      }
      for (std::size_t i = 0; i < k; ++i) {
        const double fresh = total > 0.0 ? raw[i] / total
                                         : 1.0 / static_cast<double>(k);
        double& weight = analysis.weights[s * k + i];
        const double blended = options.damping * fresh + (1.0 - options.damping) * weight;
        max_change = std::max(max_change, std::abs(blended - weight));
        weight = blended;
      }
    }
    if (max_change < options.outer_tolerance) {
      analysis.converged = true;
      break;
    }
  }

  // AP under the converged weights: the request takes one try on route i
  // with probability w_{s,i} (eq. 15 restricted to single attempts).
  for (std::size_t r = 0; r < routes.size(); ++r) {
    routes[r].offered_erlangs = rho_s * analysis.weights[r];
  }
  fp = solve_fixed_point(model.topology->link_count(), capacities, routes,
                         options.fixed_point);
  analysis.admission_probability = admission_probability(routes, fp.route_rejection);
  return analysis;
}

}  // namespace anyqos::analysis
