// Approximate analysis of <ED,R> for R > 1 (extension).
//
// Appendix A notes the method "can be extended to other systems (under
// certain approximation assumptions)" without giving the extension; we
// implement one and validate it against simulation in EXPERIMENTS.md.
//
// Approximation assumptions (beyond link independence):
//  1. Attempt streams stay Poisson: a request's retries contribute extra
//     offered load to the routes they probe.
//  2. Route rejections are independent across a request's attempts.
//  3. Destinations are tried uniformly at random without replacement
//     (exactly ED's behaviour).
//
// Under (2)+(3) the probability that a source-s request is rejected equals
// the average over all R-subsets T of its K routes of prod_{r in T} L_r —
// the elementary-symmetric mean of the rejection probabilities. The attempt
// probability of route i (how much load it sees) follows the same subset
// calculus restricted to orderings in which every route before i failed.
// An outer loop alternates these load estimates with the reduced-load fixed
// point until the rejection vector stabilizes.
#pragma once

#include "src/analysis/ap_analysis.h"

namespace anyqos::analysis {

struct RetryAnalysisOptions {
  FixedPointOptions fixed_point;
  double outer_tolerance = 1e-8;     ///< max |L - L_prev| across routes
  std::size_t max_outer_iterations = 200;
};

struct RetryApAnalysis {
  double admission_probability = 0.0;
  /// Expected destinations tried per request (the paper's retrial metric).
  double average_attempts = 0.0;
  std::size_t outer_iterations = 0;
  bool converged = false;
};

/// Approximate AP of system <ED,R> on `model`. R = 1 reduces exactly to
/// analyze_ed1. Requires 1 <= max_tries <= K.
RetryApAnalysis analyze_ed_retry(const AnalyticModel& model, std::size_t max_tries,
                                 const RetryAnalysisOptions& options);

/// Approximate AP of <SP,R>: the SP policy extended with retrials, trying
/// members in increasing fixed-route distance (ties toward the lower member
/// index, matching core::ShortestPathSelector). The deterministic try order
/// makes the calculus exact under the attempt-independence assumption:
///   attempt load of rank-j route = rho_s * prod_{m<j} L_m,
///   AP_s = 1 - prod_{j<R} L_j.
/// R = 1 reduces to analyze_sp. Requires 1 <= max_tries <= K.
RetryApAnalysis analyze_sp_retry(const AnalyticModel& model, std::size_t max_tries,
                                 const RetryAnalysisOptions& options);

/// Mean over all `subset_size`-subsets of `values` of the product of the
/// chosen entries (elementary symmetric polynomial over binomial
/// coefficient). subset_size == 0 yields 1. Exposed for testing.
double elementary_symmetric_mean(const std::vector<double>& values, std::size_t subset_size);

}  // namespace anyqos::analysis
