#include "src/analysis/ap_analysis.h"

#include <cmath>

#include "src/util/require.h"

namespace anyqos::analysis {

namespace {

void validate(const AnalyticModel& model) {
  util::require(model.topology != nullptr, "analytic model needs a topology");
  util::require(!model.sources.empty(), "analytic model needs sources");
  util::require(!model.members.empty(), "analytic model needs group members");
  util::require(model.lambda_total > 0.0, "arrival rate must be positive");
  util::require(model.mean_holding_s > 0.0, "holding time must be positive");
  util::require(model.flow_bandwidth_bps > 0.0, "flow bandwidth must be positive");
  util::require(model.anycast_share > 0.0 && model.anycast_share <= 1.0,
                "anycast share must be in (0,1]");
}

ApAnalysis run(const AnalyticModel& model, std::vector<RouteLoad> routes,
               const FixedPointOptions& options) {
  ApAnalysis analysis;
  analysis.fixed_point = solve_fixed_point(model.topology->link_count(),
                                           model.capacity_circuits(), routes, options);
  analysis.admission_probability =
      admission_probability(routes, analysis.fixed_point.route_rejection);
  analysis.routes = std::move(routes);
  return analysis;
}

}  // namespace

std::vector<double> AnalyticModel::capacity_circuits() const {
  util::require(topology != nullptr, "analytic model needs a topology");
  std::vector<double> capacities;
  capacities.reserve(topology->link_count());
  for (net::LinkId id = 0; id < topology->link_count(); ++id) {
    capacities.push_back(
        std::floor(topology->capacity(id) * anycast_share / flow_bandwidth_bps));
  }
  return capacities;
}

double AnalyticModel::per_source_erlangs() const {
  util::require(!sources.empty(), "analytic model needs sources");
  return lambda_total / static_cast<double>(sources.size()) * mean_holding_s;
}

ApAnalysis analyze_ed1(const AnalyticModel& model, const FixedPointOptions& options) {
  validate(model);
  const net::RouteTable table(*model.topology, model.members);
  const double rho_s = model.per_source_erlangs();
  const double k = static_cast<double>(model.members.size());
  std::vector<RouteLoad> routes;
  routes.reserve(model.sources.size() * model.members.size());
  for (const net::NodeId s : model.sources) {
    for (std::size_t i = 0; i < model.members.size(); ++i) {
      RouteLoad load;
      load.links = table.route(s, i).links;
      load.offered_erlangs = rho_s / k;  // uniform spreading, eq. before (14)
      routes.push_back(std::move(load));
    }
  }
  return run(model, std::move(routes), options);
}

ApAnalysis analyze_sp(const AnalyticModel& model, const FixedPointOptions& options) {
  validate(model);
  const net::RouteTable table(*model.topology, model.members);
  const double rho_s = model.per_source_erlangs();
  std::vector<RouteLoad> routes;
  routes.reserve(model.sources.size() * model.members.size());
  for (const net::NodeId s : model.sources) {
    const std::size_t nearest = table.shortest_destination(s);
    for (std::size_t i = 0; i < model.members.size(); ++i) {
      RouteLoad load;
      load.links = table.route(s, i).links;
      load.offered_erlangs = i == nearest ? rho_s : 0.0;  // eq. (14)
      routes.push_back(std::move(load));
    }
  }
  return run(model, std::move(routes), options);
}

}  // namespace anyqos::analysis
