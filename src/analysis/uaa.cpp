#include "src/analysis/uaa.h"

#include <algorithm>
#include <cmath>

#include "src/util/require.h"

namespace anyqos::analysis {

namespace {

constexpr double kSqrt2Pi = 2.506628274631000502;
constexpr double kSqrtPi = 1.772453850905516027;

// Scaled complementary error function erfcx(x) = e^{x^2} erfc(x) for x >= 0.
// Direct evaluation overflows/underflows past x ~ 26; the asymptotic series
// erfcx(x) ~ 1/(x sqrt(pi)) * sum (-1)^k (2k-1)!! / (2x^2)^k takes over.
double erfcx(double x) {
  if (x > 20.0) {
    const double inv2 = 1.0 / (2.0 * x * x);
    double term = 1.0;
    double sum = 1.0;
    for (int k = 1; k <= 6; ++k) {
      term *= -(2.0 * k - 1.0) * inv2;
      sum += term;
    }
    return sum / (x * kSqrtPi);
  }
  return std::exp(x * x) * std::erfc(x);
}

}  // namespace

double uaa_blocking(double offered_erlangs, double capacity_circuits) {
  util::require(offered_erlangs >= 0.0, "offered load must be non-negative");
  util::require(capacity_circuits >= 1.0, "UAA requires capacity >= 1 (eq. 23)");
  const double v = offered_erlangs;
  const double c = capacity_circuits;
  if (v == 0.0) {
    return 0.0;
  }

  const double z = c / v;          // z*
  const double delta = 1.0 - z;    // > 0 in overload, < 0 in underload
  // F(z*) = v(z*-1) - C log z*; always <= 0, clamp rounding noise.
  const double f = std::min(v * (z - 1.0) - c * std::log(z), 0.0);
  const double variance = c;       // V(z*) = v z* = C exactly

  double bracket;
  if (std::abs(delta) < 1e-4) {
    // Series limit of 1/(sqrt(V) delta) - sign/sqrt(-2F) around z* = 1;
    // the direct difference cancels catastrophically there.
    bracket = (2.0 / 3.0 + 5.0 * delta / 12.0) / std::sqrt(v);
  } else {
    const double sign = delta > 0.0 ? 1.0 : -1.0;
    bracket = 1.0 / (std::sqrt(variance) * delta) - sign / std::sqrt(-2.0 * f);
  }

  double blocking;
  if (delta >= 0.0) {
    // Overload / critical: every term of M carries the factor e^{F}, which
    // underflows long before the answer (B -> 1 - z*) does. Work with the
    // scaled normalizer M e^{-F} = erfc(x) e^{x^2} / 2 + bracket / sqrt(2pi),
    // x = sqrt(-F), so B = 1 / (M e^{-F} sqrt(2pi V)).
    const double x = std::sqrt(-f);
    const double scaled_m = 0.5 * erfcx(x) + bracket / kSqrt2Pi;
    util::ensure(scaled_m > 0.0, "UAA normalizer must be positive");
    blocking = 1.0 / (scaled_m * kSqrt2Pi * std::sqrt(variance));
  } else {
    // Underload: M -> 1 and B ~ e^{F} itself; direct evaluation is stable
    // (if e^{F} underflows, the blocking genuinely is ~0).
    const double erfc_term = 0.5 * std::erfc(-std::sqrt(-f));
    const double m = erfc_term + std::exp(f) / kSqrt2Pi * bracket;
    util::ensure(m > 0.0, "UAA normalizer must be positive");
    blocking = std::exp(f) / (m * kSqrt2Pi * std::sqrt(variance));
  }
  return std::clamp(blocking, 0.0, 1.0);
}

}  // namespace anyqos::analysis
