// Uniform Asymptotic Approximation of link blocking (paper Appendix A.2,
// eqs. (25)-(28)).
//
// The link blocking function L() is Erlang-B; the paper evaluates it with the
// UAA of [17] (Mitra/Morrison style):
//     F(z) = v(z-1) - C log z,  V(z) = v z,  z* = C/v,
//     B ≈ e^{F(z*)} / (M sqrt(2π V(z*))),
//     M = ½ erfc(sgn(1-z*) sqrt(-F(z*)))
//         + e^{F(z*)}/sqrt(2π) * [ 1/(sqrt(V(z*)) (1-z*)) - sgn(1-z*)/sqrt(-2F(z*)) ]
// (M is a uniform approximation of the Poisson(v) CDF at C: the numerator is
// Stirling's approximation of the Poisson pmf, and B = pmf/CDF exactly.)
//
// The paper's printed z* = 1 branch of (28) is garbled; we use the exact
// limit of the z* != 1 branch, derived by series expansion around z* = 1:
//     bracket -> (2/3 + 5(1-z*)/12) / sqrt(v),
// which recovers the known P(K <= v) ≈ ½ + 2/(3 sqrt(2π v)) median
// correction. Tests validate the implementation against exact Erlang-B
// across underload, critical load, and overload.
#pragma once

namespace anyqos::analysis {

/// UAA blocking probability for a link with `capacity_circuits` circuits
/// (need not be integral) offered `offered_erlangs` of Poisson load.
/// Result is clamped to [0, 1]. Requires capacity >= 1 (eq. (23)).
double uaa_blocking(double offered_erlangs, double capacity_circuits);

}  // namespace anyqos::analysis
