#include "src/analysis/capacity.h"

#include "src/util/require.h"

namespace anyqos::analysis {

double analytic_ap(const AnalyticModel& model, AnalyzedSystem system, std::size_t max_tries,
                   const FixedPointOptions& options) {
  switch (system) {
    case AnalyzedSystem::kEd1:
      return analyze_ed1(model, options).admission_probability;
    case AnalyzedSystem::kEdRetry: {
      RetryAnalysisOptions retry;
      retry.fixed_point = options;
      return analyze_ed_retry(model, max_tries, retry).admission_probability;
    }
    case AnalyzedSystem::kSp:
      return analyze_sp(model, options).admission_probability;
  }
  util::unreachable("AnalyzedSystem");
}

double lambda_at_target_ap(AnalyticModel model, const CapacityQuery& query) {
  util::require(query.target_ap > 0.0 && query.target_ap < 1.0,
                "target AP must be in (0,1)");
  util::require(query.lambda_low > 0.0 && query.lambda_high > query.lambda_low,
                "lambda bracket must be positive and ordered");
  util::require(query.tolerance > 0.0, "tolerance must be positive");

  const auto ap_at = [&](double lambda) {
    model.lambda_total = lambda;
    return analytic_ap(model, query.system, query.max_tries, query.fixed_point);
  };
  util::require(ap_at(query.lambda_low) >= query.target_ap,
                "AP at lambda_low is already below the target");
  util::require(ap_at(query.lambda_high) < query.target_ap,
                "AP at lambda_high still meets the target; widen the bracket");

  double lo = query.lambda_low;   // invariant: AP(lo) >= target
  double hi = query.lambda_high;  // invariant: AP(hi) < target
  while (hi - lo > query.tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (ap_at(mid) >= query.target_ap) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace anyqos::analysis
