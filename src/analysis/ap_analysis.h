// Admission probability analysis for systems <ED,1> and SP
// (paper Appendix A.1), built on the reduced-load fixed point.
#pragma once

#include <vector>

#include "src/analysis/fixed_point.h"
#include "src/net/routing.h"
#include "src/net/topology.h"

namespace anyqos::analysis {

/// Static description of the analyzed network + workload, mirroring the
/// simulation's ExperimentModel (Section 5.1 parameters by default).
struct AnalyticModel {
  const net::Topology* topology = nullptr;  ///< must outlive the analysis
  std::vector<net::NodeId> sources;         ///< request-receiving AC-routers
  std::vector<net::NodeId> members;         ///< anycast group G(A)
  double lambda_total = 0.0;                ///< total request rate, flows/s
  double mean_holding_s = 180.0;            ///< 1/mu
  net::Bandwidth flow_bandwidth_bps = 64'000.0;  ///< b
  double anycast_share = 0.2;               ///< fraction of links for anycast

  /// Per-directed-link capacity in circuits: floor(share * raw / b) (a flow
  /// is indivisible, so fractional circuits are unusable).
  [[nodiscard]] std::vector<double> capacity_circuits() const;

  /// Per-source offered intensity rho_s = (lambda_total/|S|) * holding:
  /// the paper draws each request's source uniformly from S.
  [[nodiscard]] double per_source_erlangs() const;
};

/// Analysis output for one system.
struct ApAnalysis {
  double admission_probability = 0.0;  ///< eq. (15)
  FixedPointResult fixed_point;        ///< per-link/per-route detail
  std::vector<RouteLoad> routes;       ///< offered loads used (diagnostics)
};

/// System <ED,1>: each source spreads rho_s uniformly over its K fixed routes
/// (rho_{s,r} = rho_s / K), one attempt per request.
ApAnalysis analyze_ed1(const AnalyticModel& model, const FixedPointOptions& options);

/// System SP: each source offers all of rho_s to its shortest fixed route
/// (eq. 14).
ApAnalysis analyze_sp(const AnalyticModel& model, const FixedPointOptions& options);

}  // namespace anyqos::analysis
