#include "src/analysis/retry_extension.h"

#include <algorithm>
#include <cmath>

#include "src/util/require.h"

namespace anyqos::analysis {

double elementary_symmetric_mean(const std::vector<double>& values, std::size_t subset_size) {
  const std::size_t n = values.size();
  util::require(subset_size <= n, "subset size exceeds value count");
  if (subset_size == 0) {
    return 1.0;
  }
  // e_j via incremental polynomial multiplication: after processing value x,
  // e_j += e_{j-1} * x (descending j to reuse the array in place).
  std::vector<double> e(subset_size + 1, 0.0);
  e[0] = 1.0;
  for (const double x : values) {
    for (std::size_t j = std::min(subset_size, e.size() - 1); j >= 1; --j) {
      e[j] += e[j - 1] * x;
    }
  }
  // Divide by C(n, subset_size).
  double binom = 1.0;
  for (std::size_t j = 1; j <= subset_size; ++j) {
    binom *= static_cast<double>(n - subset_size + j) / static_cast<double>(j);
  }
  return e[subset_size] / binom;
}

RetryApAnalysis analyze_ed_retry(const AnalyticModel& model, std::size_t max_tries,
                                 const RetryAnalysisOptions& options) {
  util::require(model.topology != nullptr, "analytic model needs a topology");
  util::require(!model.members.empty(), "analytic model needs group members");
  util::require(!model.sources.empty(), "analytic model needs sources");
  const std::size_t k = model.members.size();
  util::require(max_tries >= 1 && max_tries <= k, "R must be in [1, K]");

  const net::RouteTable table(*model.topology, model.members);
  const double rho_s = model.per_source_erlangs();
  const std::size_t num_sources = model.sources.size();
  const auto capacities = model.capacity_circuits();

  // routes[s*k + i] is source s's fixed route to member i.
  std::vector<RouteLoad> routes(num_sources * k);
  for (std::size_t s = 0; s < num_sources; ++s) {
    for (std::size_t i = 0; i < k; ++i) {
      routes[s * k + i].links = table.route(model.sources[s], i).links;
    }
  }

  std::vector<double> rejection(num_sources * k, 0.0);
  RetryApAnalysis analysis;
  for (std::size_t outer = 1; outer <= options.max_outer_iterations; ++outer) {
    analysis.outer_iterations = outer;
    // Offered loads implied by the current rejection estimates: route i of
    // source s is attempted with probability
    //   A_i = (1/K) sum_{t=1}^{R} esm(L^{(-i)}, t-1).
    for (std::size_t s = 0; s < num_sources; ++s) {
      for (std::size_t i = 0; i < k; ++i) {
        std::vector<double> others;
        others.reserve(k - 1);
        for (std::size_t j = 0; j < k; ++j) {
          if (j != i) {
            others.push_back(rejection[s * k + j]);
          }
        }
        double attempt_probability = 0.0;
        for (std::size_t t = 1; t <= max_tries; ++t) {
          attempt_probability += elementary_symmetric_mean(others, t - 1);
        }
        attempt_probability /= static_cast<double>(k);
        routes[s * k + i].offered_erlangs = rho_s * attempt_probability;
      }
    }

    const FixedPointResult fp = solve_fixed_point(model.topology->link_count(), capacities,
                                                  routes, options.fixed_point);
    double max_change = 0.0;
    for (std::size_t r = 0; r < rejection.size(); ++r) {
      max_change = std::max(max_change, std::abs(fp.route_rejection[r] - rejection[r]));
      rejection[r] = fp.route_rejection[r];
    }
    if (max_change < options.outer_tolerance) {
      analysis.converged = true;
      break;
    }
  }

  // AP and expected attempts from the converged rejection vector, averaged
  // over sources (equal per-source rates).
  double ap_sum = 0.0;
  double attempts_sum = 0.0;
  for (std::size_t s = 0; s < num_sources; ++s) {
    const std::vector<double> fails(rejection.begin() + static_cast<std::ptrdiff_t>(s * k),
                                    rejection.begin() + static_cast<std::ptrdiff_t>((s + 1) * k));
    ap_sum += 1.0 - elementary_symmetric_mean(fails, max_tries);
    for (std::size_t t = 0; t < max_tries; ++t) {
      attempts_sum += elementary_symmetric_mean(fails, t);
    }
  }
  analysis.admission_probability = ap_sum / static_cast<double>(num_sources);
  analysis.average_attempts = attempts_sum / static_cast<double>(num_sources);
  return analysis;
}

RetryApAnalysis analyze_sp_retry(const AnalyticModel& model, std::size_t max_tries,
                                 const RetryAnalysisOptions& options) {
  util::require(model.topology != nullptr, "analytic model needs a topology");
  util::require(!model.members.empty(), "analytic model needs group members");
  util::require(!model.sources.empty(), "analytic model needs sources");
  const std::size_t k = model.members.size();
  util::require(max_tries >= 1 && max_tries <= k, "R must be in [1, K]");

  const net::RouteTable table(*model.topology, model.members);
  const double rho_s = model.per_source_erlangs();
  const std::size_t num_sources = model.sources.size();
  const auto capacities = model.capacity_circuits();

  // Per source: member indices in the SP try order (distance, then index).
  std::vector<std::vector<std::size_t>> order(num_sources);
  std::vector<RouteLoad> routes(num_sources * k);
  for (std::size_t s = 0; s < num_sources; ++s) {
    std::vector<std::size_t> ranked(k);
    for (std::size_t i = 0; i < k; ++i) {
      ranked[i] = i;
    }
    std::stable_sort(ranked.begin(), ranked.end(), [&](std::size_t a, std::size_t b) {
      return table.distance(model.sources[s], a) < table.distance(model.sources[s], b);
    });
    order[s] = std::move(ranked);
    for (std::size_t i = 0; i < k; ++i) {
      routes[s * k + i].links = table.route(model.sources[s], i).links;
    }
  }

  std::vector<double> rejection(num_sources * k, 0.0);
  RetryApAnalysis analysis;
  for (std::size_t outer = 1; outer <= options.max_outer_iterations; ++outer) {
    analysis.outer_iterations = outer;
    // Rank-j route sees the load that failed on every nearer rank.
    for (std::size_t s = 0; s < num_sources; ++s) {
      double reach = rho_s;  // load reaching the current rank
      for (std::size_t rank = 0; rank < k; ++rank) {
        const std::size_t member = order[s][rank];
        if (rank < max_tries) {
          routes[s * k + member].offered_erlangs = reach;
          reach *= rejection[s * k + member];
        } else {
          routes[s * k + member].offered_erlangs = 0.0;
        }
      }
    }
    const FixedPointResult fp = solve_fixed_point(model.topology->link_count(), capacities,
                                                  routes, options.fixed_point);
    double max_change = 0.0;
    for (std::size_t r = 0; r < rejection.size(); ++r) {
      max_change = std::max(max_change, std::abs(fp.route_rejection[r] - rejection[r]));
      rejection[r] = fp.route_rejection[r];
    }
    if (max_change < options.outer_tolerance) {
      analysis.converged = true;
      break;
    }
  }

  double ap_sum = 0.0;
  double attempts_sum = 0.0;
  for (std::size_t s = 0; s < num_sources; ++s) {
    double all_fail = 1.0;
    double attempts = 0.0;
    double reach_probability = 1.0;  // P(this rank is attempted)
    for (std::size_t rank = 0; rank < max_tries; ++rank) {
      const std::size_t member = order[s][rank];
      attempts += reach_probability;
      reach_probability *= rejection[s * k + member];
      all_fail *= rejection[s * k + member];
    }
    ap_sum += 1.0 - all_fail;
    attempts_sum += attempts;
  }
  analysis.admission_probability = ap_sum / static_cast<double>(num_sources);
  analysis.average_attempts = attempts_sum / static_cast<double>(num_sources);
  return analysis;
}

}  // namespace anyqos::analysis
