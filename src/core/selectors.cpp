#include "src/core/selectors.h"

#include <algorithm>
#include <numeric>

#include "src/util/require.h"

namespace anyqos::core {

namespace {

/// Samples a member index from `weights` restricted to untried members.
/// Returns nullopt when all members are tried.
std::optional<std::size_t> sample_masked(const WeightVector& weights, std::span<const bool> tried,
                                         des::RandomStream& rng) {
  util::require(tried.size() == weights.size(), "tried mask must match group size");
  if (std::all_of(tried.begin(), tried.end(), [](bool t) { return t; })) {
    return std::nullopt;
  }
  WeightVector masked = weights.masked(tried);
  if (masked.is_zero()) {
    // Every untried member has zero weight (e.g. WD/D+B with all-zero probed
    // bandwidth after masking). Fall back to uniform over untried members so
    // the retrial budget can still be spent.
    std::vector<double> uniform(tried.size(), 0.0);
    for (std::size_t i = 0; i < tried.size(); ++i) {
      uniform[i] = tried[i] ? 0.0 : 1.0;
    }
    masked = WeightVector::normalized(std::move(uniform));
  }
  return rng.weighted_index(masked.values());
}

std::vector<std::size_t> route_distances(net::NodeId source, const net::RouteTable& routes) {
  std::vector<std::size_t> distances;
  distances.reserve(routes.destination_count());
  for (std::size_t i = 0; i < routes.destination_count(); ++i) {
    distances.push_back(routes.distance(source, i));
  }
  return distances;
}

}  // namespace

// ---------------------------------------------------------------- ED

EvenDistributionSelector::EvenDistributionSelector(std::size_t group_size)
    : weights_(WeightVector::uniform(group_size)) {}

std::optional<std::size_t> EvenDistributionSelector::select(std::span<const bool> tried,
                                                            des::RandomStream& rng) {
  return sample_masked(weights_, tried, rng);
}

std::vector<double> EvenDistributionSelector::weights() const { return weights_.values(); }

// ---------------------------------------------------------------- WD/D+H

DistanceHistorySelector::DistanceHistorySelector(net::NodeId source,
                                                 const net::RouteTable& routes, double alpha)
    : alpha_(alpha),
      weights_(WeightVector::inverse_distance(route_distances(source, routes))),
      history_(routes.destination_count()) {
  util::require(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0,1]");
}

std::optional<std::size_t> DistanceHistorySelector::select(std::span<const bool> tried,
                                                           des::RandomStream& rng) {
  // "Every time when a destination selection is about to be made, weights
  // are updated" — the update is persistent, not a per-request scratch copy.
  weights_ = apply_history(weights_, history_, alpha_);
  return sample_masked(weights_, tried, rng);
}

void DistanceHistorySelector::report(std::size_t index, bool admitted) {
  history_.record(index, admitted);
}

std::vector<double> DistanceHistorySelector::weights() const { return weights_.values(); }

// ---------------------------------------------------------------- WD/D+B

DistanceBandwidthSelector::DistanceBandwidthSelector(net::NodeId source,
                                                     const net::RouteTable& routes,
                                                     signaling::ProbeService& probe,
                                                     bool mask_infeasible,
                                                     net::Bandwidth flow_bandwidth)
    : source_(source),
      routes_(&routes),
      probe_(&probe),
      mask_infeasible_(mask_infeasible),
      flow_bandwidth_(flow_bandwidth),
      distances_(route_distances(source, routes)) {
  if (mask_infeasible_) {
    util::require(flow_bandwidth_ > 0.0, "infeasibility masking needs the flow bandwidth");
  }
}

WeightVector DistanceBandwidthSelector::current_weights() const {
  std::vector<double> bandwidths;
  bandwidths.reserve(distances_.size());
  for (std::size_t i = 0; i < distances_.size(); ++i) {
    double b = probe_->route_bandwidth(routes_->route(source_, i));
    if (mask_infeasible_ && b < flow_bandwidth_) {
      b = 0.0;
    }
    bandwidths.push_back(b);
  }
  return WeightVector::bandwidth_distance(bandwidths, distances_);
}

std::optional<std::size_t> DistanceBandwidthSelector::select(std::span<const bool> tried,
                                                             des::RandomStream& rng) {
  return sample_masked(current_weights(), tried, rng);
}

std::vector<double> DistanceBandwidthSelector::weights() const {
  return current_weights().values();
}

// ---------------------------------------------------------------- SP

ShortestPathSelector::ShortestPathSelector(net::NodeId source, const net::RouteTable& routes)
    : group_size_(routes.destination_count()) {
  order_.resize(group_size_);
  std::iota(order_.begin(), order_.end(), 0);
  const auto distances = route_distances(source, routes);
  std::stable_sort(order_.begin(), order_.end(),
                   [&](std::size_t a, std::size_t b) { return distances[a] < distances[b]; });
}

std::optional<std::size_t> ShortestPathSelector::select(std::span<const bool> tried,
                                                        des::RandomStream& /*rng*/) {
  util::require(tried.size() == group_size_, "tried mask must match group size");
  for (const std::size_t index : order_) {
    if (!tried[index]) {
      return index;
    }
  }
  return std::nullopt;
}

std::vector<double> ShortestPathSelector::weights() const {
  // Deterministic policy: all probability mass on the nearest member.
  std::vector<double> w(group_size_, 0.0);
  w[order_.front()] = 1.0;
  return w;
}

}  // namespace anyqos::core
