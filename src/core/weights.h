// Destination weight vectors (paper Section 4.3).
//
// A weight vector assigns each of the K group members a selection
// probability; every assignment must satisfy constraint (1): sum W_i = 1.
// This module provides the paper's constructions — uniform (2),
// inverse-distance (4), bandwidth-over-distance (12) — plus the masking /
// renormalization used when retries exclude already-tried members.
#pragma once

#include <span>
#include <vector>

namespace anyqos::core {

/// A probability vector over group members.
class WeightVector {
 public:
  /// Uniform weights W_i = 1/K (eq. 2, the ED assignment).
  static WeightVector uniform(std::size_t k);

  /// Inverse-distance weights W_i ∝ 1/D_i (eq. 4). Distances are route hop
  /// counts; a zero distance (source co-located with a member) is treated as
  /// distance 1 so the weight stays finite while remaining the largest.
  static WeightVector inverse_distance(std::span<const std::size_t> distances);

  /// Bandwidth-over-distance weights W_i ∝ B_i / D_i (eq. 12). When every
  /// B_i is zero the result falls back to inverse-distance weights so a
  /// selection can still be made (the reservation will then fail and retrial
  /// control takes over); the paper leaves this corner unspecified.
  static WeightVector bandwidth_distance(std::span<const double> bandwidths,
                                         std::span<const std::size_t> distances);

  /// Wraps raw non-negative values, normalizing them to sum 1.
  /// Requires at least one positive value.
  static WeightVector normalized(std::vector<double> raw);

  [[nodiscard]] std::size_t size() const { return weights_.size(); }
  [[nodiscard]] double at(std::size_t i) const;
  [[nodiscard]] const std::vector<double>& values() const { return weights_; }

  /// Weights with `excluded` members zeroed and the rest renormalized.
  /// Returns an all-zero vector when every member with positive weight is
  /// excluded (callers detect this via is_zero()).
  [[nodiscard]] WeightVector masked(std::span<const bool> excluded) const;

  /// True when every entry is zero (only produced by masked()).
  [[nodiscard]] bool is_zero() const;

  /// Checks constraint (1) within `tolerance`.
  [[nodiscard]] bool normalized_within(double tolerance) const;

 private:
  explicit WeightVector(std::vector<double> weights) : weights_(std::move(weights)) {}

  std::vector<double> weights_;
};

}  // namespace anyqos::core
