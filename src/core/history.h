// Local admission history (paper Section 4.3.2, eqs. (5)-(10)).
//
// Each AC-router keeps, per anycast group, a list H = <h_1..h_K> where h_i
// counts the *consecutive* reservation failures most recently observed for
// member i (reset to 0 by any success). The WD/D+H algorithm shifts weight
// away from members with non-zero h_i using discount parameter alpha.
#pragma once

#include <cstddef>
#include <vector>

#include "src/core/weights.h"

namespace anyqos::core {

/// The admission-history list H with the paper's update rule (7).
class AdmissionHistory {
 public:
  /// All-zero history for `k` members (eq. 6).
  explicit AdmissionHistory(std::size_t k);

  /// Applies eq. (7) after member `index` was tried: success resets h_i to 0,
  /// failure increments it.
  void record(std::size_t index, bool success);

  [[nodiscard]] std::size_t size() const { return failures_.size(); }
  /// h_i: consecutive recent failures for member `index`.
  [[nodiscard]] std::size_t consecutive_failures(std::size_t index) const;
  [[nodiscard]] const std::vector<std::size_t>& values() const { return failures_; }

  /// Resets all entries to zero.
  void reset();

 private:
  std::vector<std::size_t> failures_;
};

/// Applies the paper's three-step weight update (eqs. (8)-(10)) to `weights`
/// using `history` and discount `alpha` in [0,1]:
///   1. AW = sum W_i (1 - alpha^{h_i})           — adjustable mass
///   2. W'_i = W_i alpha^{h_i}      when h_i != 0
///      W'_i = W_i + AW / M         when h_i == 0 (M = #members with h_i == 0)
///   3. renormalize
/// alpha = 0 gives history maximal impact, alpha = 1 none.
///
/// Corner cases the paper leaves open, resolved here:
///  - M == 0 (every member failing): step 2's redistribution target is empty,
///    so W'_i = W_i alpha^{h_i} for all i and step 3 renormalizes.
///  - All W'_i == 0 (alpha == 0 and every member failing): falls back to the
///    pre-update weights — history clearly carries no usable signal.
WeightVector apply_history(const WeightVector& weights, const AdmissionHistory& history,
                           double alpha);

}  // namespace anyqos::core
