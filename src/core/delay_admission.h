// DAC for delay-constrained anycast flows (Section 6 realized end to end).
//
// The paper notes that with rate-based schedulers an end-to-end delay bound
// maps to a bandwidth requirement (src/core/qos.h). For anycast this mapping
// is per-member: the required rate grows with the route's hop count, so the
// destination choice changes how much bandwidth must be reserved. This
// controller runs the Figure-1 loop with that coupling:
//
//   - members whose route cannot meet the deadline at any rate are excluded;
//   - the remaining members are drawn with weight proportional to
//     1 / required_rate_i (cheaper members preferred — the delay-aware
//     analogue of eq. (4)'s inverse-distance discrimination);
//   - reservation uses the member-specific effective bandwidth, and the
//     decision records it so teardown releases exactly what was reserved.
#pragma once

#include <memory>
#include <optional>

#include "src/core/group.h"
#include "src/core/qos.h"
#include "src/core/retrial.h"
#include "src/des/random.h"
#include "src/net/routing.h"
#include "src/signaling/rsvp.h"

namespace anyqos::core {

/// A flow request carrying a full QoS requirement instead of a bare rate.
struct DelayFlowRequest {
  net::NodeId source = net::kInvalidNode;
  QosRequirement qos;
};

/// Outcome of delay-aware admission.
struct DelayAdmissionDecision {
  bool admitted = false;
  std::optional<std::size_t> destination_index;
  net::Path route;
  /// The rate actually reserved (member-specific); needed for release.
  net::Bandwidth reserved_bps = 0.0;
  std::size_t attempts = 0;
  std::uint64_t messages = 0;
};

/// AC-router logic for delay-constrained anycast flows.
class DelayAdmissionController {
 public:
  /// Referenced objects must outlive the controller.
  DelayAdmissionController(net::NodeId source, const AnycastGroup& group,
                           const net::RouteTable& routes, signaling::ReservationProtocol& rsvp,
                           SchedulerModel scheduler, std::unique_ptr<RetrialPolicy> retrial);

  /// Runs the DAC loop; on admission the member-specific effective bandwidth
  /// is reserved along the returned route.
  DelayAdmissionDecision admit(const DelayFlowRequest& request, des::RandomStream& rng);

  /// Releases an admitted flow's reservation.
  void release(const DelayAdmissionDecision& decision);

  /// The effective rate member `index` would need for `qos`, or nullopt when
  /// its route cannot meet the deadline. Exposed for tests and planning.
  [[nodiscard]] std::optional<net::Bandwidth> required_rate(const QosRequirement& qos,
                                                            std::size_t index) const;

 private:
  net::NodeId source_;
  const AnycastGroup* group_;
  const net::RouteTable* routes_;
  signaling::ReservationProtocol* rsvp_;
  SchedulerModel scheduler_;
  std::unique_ptr<RetrialPolicy> retrial_;
};

}  // namespace anyqos::core
