#include "src/core/selector.h"

#include "src/core/selectors.h"
#include "src/util/require.h"

namespace anyqos::core {

void DestinationSelector::report(std::size_t /*index*/, bool /*admitted*/) {}

SelectionAlgorithm parse_algorithm(const std::string& name) {
  if (name == "ED") {
    return SelectionAlgorithm::kEvenDistribution;
  }
  if (name == "WD/D+H") {
    return SelectionAlgorithm::kDistanceHistory;
  }
  if (name == "WD/D+B") {
    return SelectionAlgorithm::kDistanceBandwidth;
  }
  if (name == "SP") {
    return SelectionAlgorithm::kShortestPath;
  }
  util::require(false, "unknown selection algorithm: " + name);
  util::unreachable("parse_algorithm");
}

std::string to_string(SelectionAlgorithm algorithm) {
  switch (algorithm) {
    case SelectionAlgorithm::kEvenDistribution:
      return "ED";
    case SelectionAlgorithm::kDistanceHistory:
      return "WD/D+H";
    case SelectionAlgorithm::kDistanceBandwidth:
      return "WD/D+B";
    case SelectionAlgorithm::kShortestPath:
      return "SP";
  }
  util::unreachable("SelectionAlgorithm");
}

namespace {

void check_common(const SelectorEnvironment& env) {
  util::require(env.group != nullptr, "selector environment needs a group");
  util::require(env.routes != nullptr, "selector environment needs a route table");
  util::require(env.group->size() == env.routes->destination_count(),
                "route table destinations must match group size");
  util::require(env.source != net::kInvalidNode, "selector environment needs a source");
}

}  // namespace

std::unique_ptr<DestinationSelector> make_selector(SelectionAlgorithm algorithm,
                                                   const SelectorEnvironment& env) {
  check_common(env);
  switch (algorithm) {
    case SelectionAlgorithm::kEvenDistribution:
      return std::make_unique<EvenDistributionSelector>(env.group->size());
    case SelectionAlgorithm::kDistanceHistory:
      return std::make_unique<DistanceHistorySelector>(env.source, *env.routes, env.alpha);
    case SelectionAlgorithm::kDistanceBandwidth:
      util::require(env.probe != nullptr, "WD/D+B requires a probe service");
      return std::make_unique<DistanceBandwidthSelector>(
          env.source, *env.routes, *env.probe, env.wdb_mask_infeasible, env.flow_bandwidth);
    case SelectionAlgorithm::kShortestPath:
      return std::make_unique<ShortestPathSelector>(env.source, *env.routes);
  }
  util::unreachable("make_selector");
}

}  // namespace anyqos::core
