#include "src/core/multipath_admission.h"

#include <algorithm>

#include "src/util/require.h"

namespace anyqos::core {

MultiPathAdmissionController::MultiPathAdmissionController(
    net::NodeId source, const AnycastGroup& group, const net::MultiPathRouteTable& routes,
    signaling::ReservationProtocol& rsvp, std::unique_ptr<RetrialPolicy> retrial)
    : source_(source),
      group_(&group),
      routes_(&routes),
      rsvp_(&rsvp),
      retrial_(std::move(retrial)) {
  util::require(retrial_ != nullptr, "controller needs a retrial policy");
  util::require(group.size() == routes.destination_count(),
                "route table must cover exactly the group members");
  for (std::size_t index = 0; index < routes.destination_count(); ++index) {
    for (std::size_t rank = 0; rank < routes.path_count(source, index); ++rank) {
      Alternative alt;
      alt.destination_index = index;
      alt.path_rank = rank;
      alt.route = &routes.path(source, index, rank);
      flat_.push_back(alt);
      base_weights_.push_back(
          1.0 / static_cast<double>(std::max<std::size_t>(alt.route->hops(), 1)));
    }
  }
  util::ensure(!flat_.empty(), "no alternatives from this source");
}

MultiPathDecision MultiPathAdmissionController::admit(net::Bandwidth bandwidth_bps,
                                                      des::RandomStream& rng) {
  util::require(bandwidth_bps > 0.0, "flow bandwidth must be positive");
  MultiPathDecision decision;
  const std::uint64_t messages_before = rsvp_->counter().total();
  std::vector<double> weights = base_weights_;
  while (true) {
    double total = 0.0;
    for (const double w : weights) {
      total += w;
    }
    if (total <= 0.0) {
      break;  // every alternative tried
    }
    const std::size_t pick = rng.weighted_index(weights);
    weights[pick] = 0.0;  // without replacement
    ++decision.attempts;
    const Alternative& alt = flat_[pick];
    const signaling::ReservationResult result = rsvp_->reserve(*alt.route, bandwidth_bps);
    if (result.admitted) {
      decision.admitted = true;
      decision.destination_index = alt.destination_index;
      decision.path_rank = alt.path_rank;
      decision.route = *alt.route;
      break;
    }
    if (!retrial_->keep_going(decision.attempts)) {
      break;
    }
  }
  decision.messages = rsvp_->counter().total() - messages_before;
  return decision;
}

void MultiPathAdmissionController::release(const MultiPathDecision& decision,
                                           net::Bandwidth bandwidth_bps) {
  util::require(decision.admitted, "only admitted flows can be released");
  rsvp_->teardown(decision.route, bandwidth_bps);
}

}  // namespace anyqos::core
