#include "src/core/group.h"

#include <algorithm>
#include <set>

#include "src/util/require.h"

namespace anyqos::core {

AnycastGroup::AnycastGroup(std::string address, std::vector<net::NodeId> members)
    : address_(std::move(address)), members_(std::move(members)) {
  util::require(!members_.empty(), "anycast group must have at least one member");
  const std::set<net::NodeId> unique(members_.begin(), members_.end());
  util::require(unique.size() == members_.size(), "anycast group members must be distinct");
  up_.assign(members_.size(), 1);
  up_count_ = members_.size();
}

bool AnycastGroup::is_up(std::size_t index) const {
  util::require(index < members_.size(), "member index out of range");
  return up_[index] != 0;
}

void AnycastGroup::set_member_up(std::size_t index, bool up) {
  util::require(index < members_.size(), "member index out of range");
  if ((up_[index] != 0) == up) {
    return;  // no transition
  }
  up_[index] = up ? 1 : 0;
  if (up) {
    ++up_count_;
  } else {
    --up_count_;
  }
}

net::NodeId AnycastGroup::member(std::size_t index) const {
  util::require(index < members_.size(), "member index out of range");
  return members_[index];
}

bool AnycastGroup::contains(net::NodeId node) const {
  return std::find(members_.begin(), members_.end(), node) != members_.end();
}

}  // namespace anyqos::core
