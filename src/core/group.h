// Anycast groups (paper Section 3): an anycast address A and its set of
// designated recipients G(A). A flow addressed to A may be delivered to any
// member, but once the first packet is delivered the destination is fixed
// for the flow's lifetime (handled by admission pinning a route).
#pragma once

#include <string>
#include <vector>

#include "src/net/graph.h"

namespace anyqos::core {

/// An anycast address and its recipient group.
///
/// Members are identified by the router each recipient host attaches to
/// (the experiment model attaches exactly one host per router). Member order
/// is significant: selection algorithms index members by position.
///
/// Membership is dynamic (churn extension): each member carries an up/down
/// flag. The member list itself never changes — indices stay stable so
/// selector state (weights, history) survives churn — but admission skips
/// down members, and flows pinned to a member that goes down are torn down
/// by the simulation.
class AnycastGroup {
 public:
  /// `address` is a display label (e.g. "anycast://mirrors").
  /// `members` must be non-empty and duplicate-free. All members start up.
  AnycastGroup(std::string address, std::vector<net::NodeId> members);

  [[nodiscard]] const std::string& address() const { return address_; }
  [[nodiscard]] const std::vector<net::NodeId>& members() const { return members_; }
  /// K, the group size (up and down members alike).
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  /// Router of member `index`.
  [[nodiscard]] net::NodeId member(std::size_t index) const;
  /// True when `node` hosts a member (up or down).
  [[nodiscard]] bool contains(net::NodeId node) const;

  /// True while member `index` is in service and eligible for selection.
  [[nodiscard]] bool is_up(std::size_t index) const;
  /// Marks member `index` up (true) or down (false).
  void set_member_up(std::size_t index, bool up);
  /// Members currently up.
  [[nodiscard]] std::size_t up_count() const { return up_count_; }

 private:
  std::string address_;
  std::vector<net::NodeId> members_;
  std::vector<char> up_;  // vector<bool> is bit-packed; keep it addressable
  std::size_t up_count_ = 0;
};

}  // namespace anyqos::core
