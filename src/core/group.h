// Anycast groups (paper Section 3): an anycast address A and its set of
// designated recipients G(A). A flow addressed to A may be delivered to any
// member, but once the first packet is delivered the destination is fixed
// for the flow's lifetime (handled by admission pinning a route).
#pragma once

#include <string>
#include <vector>

#include "src/net/graph.h"

namespace anyqos::core {

/// An anycast address and its recipient group.
///
/// Members are identified by the router each recipient host attaches to
/// (the experiment model attaches exactly one host per router). Member order
/// is significant: selection algorithms index members by position.
class AnycastGroup {
 public:
  /// `address` is a display label (e.g. "anycast://mirrors").
  /// `members` must be non-empty and duplicate-free.
  AnycastGroup(std::string address, std::vector<net::NodeId> members);

  [[nodiscard]] const std::string& address() const { return address_; }
  [[nodiscard]] const std::vector<net::NodeId>& members() const { return members_; }
  /// K, the group size.
  [[nodiscard]] std::size_t size() const { return members_.size(); }
  /// Router of member `index`.
  [[nodiscard]] net::NodeId member(std::size_t index) const;
  /// True when `node` hosts a member.
  [[nodiscard]] bool contains(net::NodeId node) const;

 private:
  std::string address_;
  std::vector<net::NodeId> members_;
};

}  // namespace anyqos::core
