#include "src/core/delay_admission.h"

#include <algorithm>
#include <vector>

#include "src/util/require.h"

namespace anyqos::core {

DelayAdmissionController::DelayAdmissionController(net::NodeId source,
                                                   const AnycastGroup& group,
                                                   const net::RouteTable& routes,
                                                   signaling::ReservationProtocol& rsvp,
                                                   SchedulerModel scheduler,
                                                   std::unique_ptr<RetrialPolicy> retrial)
    : source_(source),
      group_(&group),
      routes_(&routes),
      rsvp_(&rsvp),
      scheduler_(scheduler),
      retrial_(std::move(retrial)) {
  util::require(retrial_ != nullptr, "controller needs a retrial policy");
  util::require(group.size() == routes.destination_count(),
                "route table must cover exactly the group members");
}

std::optional<net::Bandwidth> DelayAdmissionController::required_rate(
    const QosRequirement& qos, std::size_t index) const {
  const net::Path& route = routes_->route(source_, index);
  // A co-located member (empty route) has no queueing path; only the rate
  // floor applies.
  const std::size_t hops = std::max<std::size_t>(route.hops(), 1);
  return effective_bandwidth(qos, hops, scheduler_);
}

DelayAdmissionDecision DelayAdmissionController::admit(const DelayFlowRequest& request,
                                                       des::RandomStream& rng) {
  util::require(request.source == source_, "request routed to the wrong AC-router");
  DelayAdmissionDecision decision;
  const std::uint64_t messages_before = rsvp_->counter().total();

  // Per-member required rates; infeasible members get weight zero.
  const std::size_t k = group_->size();
  std::vector<std::optional<net::Bandwidth>> rates(k);
  for (std::size_t i = 0; i < k; ++i) {
    rates[i] = required_rate(request.qos, i);
  }
  std::vector<bool> tried(k, false);

  while (true) {
    std::vector<double> weights(k, 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      if (!tried[i] && rates[i].has_value()) {
        weights[i] = 1.0 / *rates[i];  // cheaper reservation = heavier weight
        total += weights[i];
      }
    }
    if (total <= 0.0) {
      break;  // nothing feasible remains
    }
    const std::size_t index = rng.weighted_index(weights);
    tried[index] = true;
    ++decision.attempts;
    const net::Path& route = routes_->route(source_, index);
    const signaling::ReservationResult result = rsvp_->reserve(route, *rates[index]);
    if (result.admitted) {
      decision.admitted = true;
      decision.destination_index = index;
      decision.route = route;
      decision.reserved_bps = *rates[index];
      break;
    }
    if (!retrial_->keep_going(decision.attempts)) {
      break;
    }
  }
  decision.messages = rsvp_->counter().total() - messages_before;
  return decision;
}

void DelayAdmissionController::release(const DelayAdmissionDecision& decision) {
  util::require(decision.admitted, "only admitted flows can be released");
  rsvp_->teardown(decision.route, decision.reserved_bps);
}

}  // namespace anyqos::core
