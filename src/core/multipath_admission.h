// DAC over multiple fixed paths per member (extension; see net/multipath.h).
//
// The selection universe becomes (member, path-rank) pairs. Weights follow
// the paper's inverse-distance heuristic (eq. 4) applied per alternative:
// W ∝ 1/hops, renormalized over untried alternatives; retrial control bounds
// the total attempts exactly as in Figure 1. With k = 1 this degenerates to
// <WD/D,R> on the standard route table; with larger k it closes part of the
// gap to GDI while remaining a fixed-route, local-information procedure.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "src/core/group.h"
#include "src/core/retrial.h"
#include "src/des/random.h"
#include "src/net/multipath.h"
#include "src/signaling/rsvp.h"

namespace anyqos::core {

/// Outcome of multipath admission.
struct MultiPathDecision {
  bool admitted = false;
  std::optional<std::size_t> destination_index;
  std::optional<std::size_t> path_rank;   ///< which alternative carried it
  net::Path route;
  std::size_t attempts = 0;
  std::uint64_t messages = 0;
};

/// AC-router logic drawing from (member, path) alternatives.
class MultiPathAdmissionController {
 public:
  /// Referenced objects must outlive the controller.
  MultiPathAdmissionController(net::NodeId source, const AnycastGroup& group,
                               const net::MultiPathRouteTable& routes,
                               signaling::ReservationProtocol& rsvp,
                               std::unique_ptr<RetrialPolicy> retrial);

  /// Runs the DAC loop over (member, path) alternatives.
  MultiPathDecision admit(net::Bandwidth bandwidth_bps, des::RandomStream& rng);

  /// Releases an admitted flow's reservation.
  void release(const MultiPathDecision& decision, net::Bandwidth bandwidth_bps);

  /// Number of selection alternatives from this source.
  [[nodiscard]] std::size_t alternatives() const { return flat_.size(); }

 private:
  struct Alternative {
    std::size_t destination_index;
    std::size_t path_rank;
    const net::Path* route;
  };

  net::NodeId source_;
  const AnycastGroup* group_;
  const net::MultiPathRouteTable* routes_;
  signaling::ReservationProtocol* rsvp_;
  std::unique_ptr<RetrialPolicy> retrial_;
  std::vector<Alternative> flat_;
  std::vector<double> base_weights_;  // 1/hops, unnormalized
};

}  // namespace anyqos::core
