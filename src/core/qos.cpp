#include "src/core/qos.h"

#include <algorithm>

#include "src/util/require.h"

namespace anyqos::core {

double wfq_delay_bound(net::Bandwidth rate_bps, std::size_t hops, const SchedulerModel& model) {
  util::require(rate_bps > 0.0, "rate must be positive");
  util::require(hops >= 1, "delay bound needs at least one hop");
  const double h = static_cast<double>(hops);
  return h * model.max_packet_bits / rate_bps + h * model.per_hop_latency_s;
}

std::optional<net::Bandwidth> rate_for_delay(double delay_s, std::size_t hops,
                                             const SchedulerModel& model) {
  util::require(delay_s > 0.0, "delay bound must be positive");
  util::require(hops >= 1, "delay bound needs at least one hop");
  const double h = static_cast<double>(hops);
  const double queueing_budget = delay_s - h * model.per_hop_latency_s;
  if (queueing_budget <= 0.0) {
    return std::nullopt;  // fixed latency alone already misses the deadline
  }
  return h * model.max_packet_bits / queueing_budget;
}

std::optional<net::Bandwidth> effective_bandwidth(const QosRequirement& qos, std::size_t hops,
                                                  const SchedulerModel& model) {
  util::require(qos.min_bandwidth_bps > 0.0 || qos.max_delay_s.has_value(),
                "QoS requirement must constrain rate or delay");
  net::Bandwidth rate = qos.min_bandwidth_bps;
  if (qos.max_delay_s.has_value()) {
    const auto delay_rate = rate_for_delay(*qos.max_delay_s, hops, model);
    if (!delay_rate.has_value()) {
      return std::nullopt;
    }
    rate = std::max(rate, *delay_rate);
  }
  util::ensure(rate > 0.0, "effective bandwidth must be positive");
  return rate;
}

}  // namespace anyqos::core
