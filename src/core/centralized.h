// Centralized admission control baseline (paper Section 1).
//
// The paper motivates DAC by contrast with a *centralized* agency that makes
// every admission decision: simple and well-informed, but a scalability
// bottleneck and a single point of failure. This controller realizes that
// alternative so the trade-off can be measured instead of argued:
//
//  - Decision quality: the agency sees the whole ledger, so among the K
//    *fixed* routes of a request it always picks an admissible one when one
//    exists (best = feasible with the fewest hops, ties to the widest
//    bottleneck). It does not invent new paths — that is GDI's privilege —
//    so CTRL sits between WD/D+B and GDI in admission probability.
//  - Cost: every request travels to the agency and back
//    (2 x hops(source, controller) control messages), and the agency's
//    decision rate is finite; requests beyond `decisions_per_second` queue
//    and suffer latency (reported, not dropped).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/group.h"
#include "src/net/routing.h"
#include "src/signaling/rsvp.h"

namespace anyqos::core {

/// Outcome of a centralized decision.
struct CentralizedDecision {
  bool admitted = false;
  std::optional<std::size_t> destination_index;
  net::Path route;
  /// Control messages: request + response to the agency, plus reservation.
  std::uint64_t messages = 0;
  /// Queueing + service delay at the agency, seconds (0 when unloaded).
  double decision_delay_s = 0.0;
};

/// The central agency. One instance serves the whole network.
class CentralizedController {
 public:
  /// `controller_node` hosts the agency; `decisions_per_second` bounds its
  /// throughput (the scalability bottleneck made explicit). References must
  /// outlive the controller.
  CentralizedController(const net::Topology& topology, net::BandwidthLedger& ledger,
                        const AnycastGroup& group, const net::RouteTable& routes,
                        signaling::ReservationProtocol& rsvp, net::NodeId controller_node,
                        double decisions_per_second);

  /// Decides (and reserves) for a request arriving at simulated time `now`
  /// from `source` with demand `bandwidth_bps`.
  CentralizedDecision admit(double now, net::NodeId source, net::Bandwidth bandwidth_bps);

  /// Releases an admitted flow.
  void release(const CentralizedDecision& decision, net::Bandwidth bandwidth_bps);

  /// Distance from `source` to the agency (message cost per request).
  [[nodiscard]] std::size_t control_distance(net::NodeId source) const;

 private:
  const net::Topology* topology_;
  net::BandwidthLedger* ledger_;
  const AnycastGroup* group_;
  const net::RouteTable* routes_;
  signaling::ReservationProtocol* rsvp_;
  net::NodeId controller_node_;
  double service_time_s_;
  double busy_until_ = 0.0;  // M/D/1-style single decision server
  std::vector<std::size_t> control_hops_;  // per source
};

}  // namespace anyqos::core
