#include "src/core/admission.h"

#include <algorithm>
#include <memory>
#include <span>

#include "src/util/require.h"

namespace anyqos::core {

AdmissionController::AdmissionController(net::NodeId source, const AnycastGroup& group,
                                         const net::RouteTable& routes,
                                         signaling::ReservationProtocol& rsvp,
                                         std::unique_ptr<DestinationSelector> selector,
                                         std::unique_ptr<RetrialPolicy> retrial)
    : source_(source),
      group_(&group),
      routes_(&routes),
      rsvp_(&rsvp),
      selector_(std::move(selector)),
      retrial_(std::move(retrial)) {
  util::require(selector_ != nullptr, "admission controller needs a selector");
  util::require(retrial_ != nullptr, "admission controller needs a retrial policy");
  util::require(group.size() == routes.destination_count(),
                "route table must cover exactly the group members");
}

AdmissionDecision AdmissionController::admit(const FlowRequest& request, des::RandomStream& rng) {
  util::require(request.source == source_, "request routed to the wrong AC-router");
  util::require(request.bandwidth_bps > 0.0, "flow bandwidth must be positive");

  AdmissionDecision decision;
  if (observer_ != nullptr) {
    observer_->on_request_begin(source_);
  }
  // Tracing is all-or-nothing per request: resolve the sink check once so
  // the loop below spends nothing (no snapshots, no allocation) untraced.
  obs::DecisionTracer* const tracer =
      (tracer_ != nullptr && tracer_->active()) ? tracer_ : nullptr;
  if (tracer != nullptr) {
    tracer->begin_request(request.request_id, source_, request.bandwidth_bps,
                          selector_->name(), retrial_->max_attempts(), group_->size());
  }
  // Message accounting by counter delta: reservation walks AND any probes a
  // selector issues (WD/D+B shares the counter via its ProbeService) are
  // attributed to this decision — the paper's overhead comparison hinges on
  // WD/D+B's probe traffic being visible.
  const std::uint64_t messages_before = rsvp_->counter().total();
  // std::vector<bool> is bit-packed and cannot view as span<const bool>.
  // Down members (churn extension) enter the loop pre-marked as tried: the
  // selector never picks them and its masking machinery redistributes their
  // weight over the live members, exactly as it does for retried ones. When
  // every member is down, select() returns nullopt immediately and the
  // request is rejected with zero attempts.
  // A circuit-broken member (gate veto) is excluded the same way, so an
  // Open breaker zeroes the member's effective selection weight and the
  // remaining members absorb it through renormalization. So is a member the
  // last routing reconvergence left unreachable (node-failure extension):
  // the AC-router's table has no live route, so it never signals toward the
  // partition. has_route() is always true under the paper's static routes.
  const auto tried = std::make_unique<bool[]>(group_->size());
  for (std::size_t i = 0; i < group_->size(); ++i) {
    tried[i] = !group_->is_up(i) || !routes_->has_route(source_, i) ||
               (gate_ != nullptr && !gate_->allow_member(i));
  }
  const std::span<const bool> tried_view(tried.get(), group_->size());
  // Figure 1: REPEAT { select; reserve; retry-control } UNTIL rejected.
  while (true) {
    const auto index = selector_->select(tried_view, rng);
    if (!index.has_value()) {
      break;  // every member tried; exhausted before the retry budget
    }
    tried[*index] = true;
    ++decision.attempts;
    if (observer_ != nullptr) {
      observer_->on_attempt(source_, *index);
    }
    // Snapshot the weight vector the selection just drew from, before
    // report() lets the selector learn from the outcome.
    std::vector<double> weight_snapshot;
    if (tracer != nullptr) {
      weight_snapshot = selector_->weights();
    }
    const net::Path& route = routes_->route(source_, *index);
    const signaling::ReservationResult result = rsvp_->reserve(route, request.bandwidth_bps);
    selector_->report(*index, result.admitted);
    if (gate_ != nullptr) {
      gate_->on_member_result(*index, result);
    }
    if (tracer != nullptr) {
      const std::size_t budget = retrial_->max_attempts();
      tracer->record_attempt(*index, group_->member(*index), std::move(weight_snapshot),
                             route.hops(), result.bottleneck_bps, result.admitted,
                             result.blocking_link, result.messages, result.retransmits,
                             budget > decision.attempts ? budget - decision.attempts : 0);
    }
    if (result.admitted) {
      decision.admitted = true;
      decision.destination_index = *index;
      decision.route = route;
      break;
    }
    if (!retrial_->keep_going(decision.attempts)) {
      break;
    }
  }
  decision.messages = rsvp_->counter().total() - messages_before;
  if (tracer != nullptr) {
    tracer->end_request(decision.admitted, decision.destination_index, decision.messages);
  }
  if (observer_ != nullptr) {
    observer_->on_decision(source_, decision, retrial_->max_attempts(), group_->size());
  }
  return decision;
}

void AdmissionController::release(const AdmissionDecision& decision, net::Bandwidth bandwidth_bps) {
  util::require(decision.admitted, "only admitted flows can be released");
  rsvp_->teardown(decision.route, bandwidth_bps);
}

GlobalAdmissionOracle::GlobalAdmissionOracle(const net::Topology& topology,
                                             net::BandwidthLedger& ledger,
                                             const AnycastGroup& group)
    : topology_(&topology), ledger_(&ledger), group_(&group) {}

AdmissionDecision GlobalAdmissionOracle::admit(const FlowRequest& request) {
  util::require(request.bandwidth_bps > 0.0, "flow bandwidth must be positive");
  AdmissionDecision decision;
  decision.attempts = 1;  // the oracle searches once, globally
  auto path = net::shortest_feasible_path_to_any(*topology_, *ledger_, request.source,
                                                 group_->members(), request.bandwidth_bps);
  if (!path.has_value()) {
    return decision;
  }
  const bool ok = ledger_->reserve(*path, request.bandwidth_bps);
  util::ensure(ok, "feasible path must admit the reservation");
  decision.admitted = true;
  decision.route = std::move(*path);
  const auto member = std::find(group_->members().begin(), group_->members().end(),
                                decision.route.destination);
  util::ensure(member != group_->members().end(), "oracle path must end at a group member");
  decision.destination_index =
      static_cast<std::size_t>(member - group_->members().begin());
  return decision;
}

void GlobalAdmissionOracle::release(const AdmissionDecision& decision,
                                    net::Bandwidth bandwidth_bps) {
  util::require(decision.admitted, "only admitted flows can be released");
  ledger_->release(decision.route, bandwidth_bps);
}

}  // namespace anyqos::core
