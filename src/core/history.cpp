#include "src/core/history.h"

#include <cmath>

#include "src/util/require.h"

namespace anyqos::core {

AdmissionHistory::AdmissionHistory(std::size_t k) : failures_(k, 0) {
  util::require(k >= 1, "history needs at least one member");
}

void AdmissionHistory::record(std::size_t index, bool success) {
  util::require(index < failures_.size(), "history index out of range");
  if (success) {
    failures_[index] = 0;
  } else {
    ++failures_[index];
  }
}

std::size_t AdmissionHistory::consecutive_failures(std::size_t index) const {
  util::require(index < failures_.size(), "history index out of range");
  return failures_[index];
}

void AdmissionHistory::reset() { failures_.assign(failures_.size(), 0); }

WeightVector apply_history(const WeightVector& weights, const AdmissionHistory& history,
                           double alpha) {
  util::require(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0,1]");
  util::require(weights.size() == history.size(), "weights and history sizes must match");
  const std::size_t k = weights.size();

  // alpha^h with the 0^0 == 1 convention (h == 0 must leave weight intact).
  const auto discount = [alpha](std::size_t h) {
    return h == 0 ? 1.0 : std::pow(alpha, static_cast<double>(h));
  };

  // Step 1 (eq. 8): adjustable weight mass.
  double adjustable = 0.0;
  std::size_t zero_history_members = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t h = history.consecutive_failures(i);
    adjustable += weights.at(i) * (1.0 - discount(h));
    if (h == 0) {
      ++zero_history_members;
    }
  }

  // Step 2 (eq. 9): shift mass from failing members to clean ones.
  std::vector<double> updated(k, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t h = history.consecutive_failures(i);
    if (h != 0) {
      updated[i] = weights.at(i) * discount(h);
    } else {
      updated[i] = weights.at(i) +
                   (zero_history_members > 0
                        ? adjustable / static_cast<double>(zero_history_members)
                        : 0.0);
    }
    total += updated[i];
  }

  if (total <= 0.0) {
    // alpha == 0 with every member failing: no signal, keep prior weights.
    return weights;
  }
  // Step 3 (eq. 10): renormalize.
  return WeightVector::normalized(std::move(updated));
}

}  // namespace anyqos::core
