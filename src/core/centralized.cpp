#include "src/core/centralized.h"

#include <algorithm>

#include "src/util/require.h"

namespace anyqos::core {

CentralizedController::CentralizedController(const net::Topology& topology,
                                             net::BandwidthLedger& ledger,
                                             const AnycastGroup& group,
                                             const net::RouteTable& routes,
                                             signaling::ReservationProtocol& rsvp,
                                             net::NodeId controller_node,
                                             double decisions_per_second)
    : topology_(&topology),
      ledger_(&ledger),
      group_(&group),
      routes_(&routes),
      rsvp_(&rsvp),
      controller_node_(controller_node),
      service_time_s_(1.0 / decisions_per_second) {
  util::require(controller_node < topology.router_count(), "controller node out of range");
  util::require(decisions_per_second > 0.0, "decision rate must be positive");
  util::require(group.size() == routes.destination_count(),
                "route table must cover exactly the group members");
  const auto distances = net::hop_distances(topology, controller_node);
  control_hops_.assign(distances.begin(), distances.end());
  for (const std::size_t d : control_hops_) {
    util::require(d != net::kUnreachable, "controller cannot reach every router");
  }
}

std::size_t CentralizedController::control_distance(net::NodeId source) const {
  util::require(source < control_hops_.size(), "source out of range");
  return control_hops_[source];
}

CentralizedDecision CentralizedController::admit(double now, net::NodeId source,
                                                 net::Bandwidth bandwidth_bps) {
  util::require(bandwidth_bps > 0.0, "flow bandwidth must be positive");
  CentralizedDecision decision;

  // The agency is a single decision server: requests queue FCFS.
  const double start = std::max(now, busy_until_);
  busy_until_ = start + service_time_s_;
  decision.decision_delay_s = busy_until_ - now;

  // Request to the agency and verdict back.
  decision.messages += 2 * control_hops_[source];

  // Global view over the fixed routes: feasible, fewest hops, then widest.
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < group_->size(); ++i) {
    const net::Path& route = routes_->route(source, i);
    if (!ledger_->can_reserve(route, bandwidth_bps)) {
      continue;
    }
    if (!best.has_value()) {
      best = i;
      continue;
    }
    const net::Path& incumbent = routes_->route(source, *best);
    if (route.hops() < incumbent.hops() ||
        (route.hops() == incumbent.hops() &&
         ledger_->bottleneck(route) > ledger_->bottleneck(incumbent))) {
      best = i;
    }
  }
  if (!best.has_value()) {
    return decision;  // nothing feasible among the fixed routes
  }
  const net::Path& route = routes_->route(source, *best);
  const signaling::ReservationResult result = rsvp_->reserve(route, bandwidth_bps);
  util::ensure(result.admitted, "agency-selected route must admit the reservation");
  decision.messages += result.messages;
  decision.admitted = true;
  decision.destination_index = *best;
  decision.route = route;
  return decision;
}

void CentralizedController::release(const CentralizedDecision& decision,
                                    net::Bandwidth bandwidth_bps) {
  util::require(decision.admitted, "only admitted flows can be released");
  rsvp_->teardown(decision.route, bandwidth_bps);
}

}  // namespace anyqos::core
