// Concrete destination-selection algorithms (paper Sections 4.3.1-4.3.2 and
// the SP baseline from Section 5.1).
#pragma once

#include <vector>

#include "src/core/history.h"
#include "src/core/selector.h"
#include "src/core/weights.h"

namespace anyqos::core {

/// ED (eq. 2): every member equally likely. Uses no status information
/// beyond the group size.
class EvenDistributionSelector final : public DestinationSelector {
 public:
  explicit EvenDistributionSelector(std::size_t group_size);

  std::optional<std::size_t> select(std::span<const bool> tried, des::RandomStream& rng) override;
  [[nodiscard]] std::vector<double> weights() const override;
  [[nodiscard]] std::string name() const override { return "ED"; }

 private:
  WeightVector weights_;
};

/// WD/D+H (eqs. 4-10): inverse-distance base weights, persistently adjusted
/// by the local admission history before every selection.
class DistanceHistorySelector final : public DestinationSelector {
 public:
  DistanceHistorySelector(net::NodeId source, const net::RouteTable& routes, double alpha);

  std::optional<std::size_t> select(std::span<const bool> tried, des::RandomStream& rng) override;
  void report(std::size_t index, bool admitted) override;
  [[nodiscard]] std::vector<double> weights() const override;
  [[nodiscard]] std::string name() const override { return "WD/D+H"; }

  [[nodiscard]] const AdmissionHistory& history() const { return history_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  double alpha_;
  WeightVector weights_;       // persistent, evolves with every selection
  AdmissionHistory history_;
};

/// WD/D+B (eqs. 11-12): weights recomputed from live route bottleneck
/// bandwidth (via the probe service) over route distance at every selection.
class DistanceBandwidthSelector final : public DestinationSelector {
 public:
  DistanceBandwidthSelector(net::NodeId source, const net::RouteTable& routes,
                            signaling::ProbeService& probe, bool mask_infeasible,
                            net::Bandwidth flow_bandwidth);

  std::optional<std::size_t> select(std::span<const bool> tried, des::RandomStream& rng) override;
  [[nodiscard]] std::vector<double> weights() const override;
  [[nodiscard]] std::string name() const override { return "WD/D+B"; }

 private:
  [[nodiscard]] WeightVector current_weights() const;

  net::NodeId source_;
  const net::RouteTable* routes_;
  signaling::ProbeService* probe_;
  bool mask_infeasible_;
  net::Bandwidth flow_bandwidth_;
  std::vector<std::size_t> distances_;
};

/// SP baseline: deterministically tries members in increasing fixed-route
/// distance (ties toward the lower member index). With R = 1 this is exactly
/// the paper's SP system — anycast traffic from one source always goes to the
/// same nearest member.
class ShortestPathSelector final : public DestinationSelector {
 public:
  ShortestPathSelector(net::NodeId source, const net::RouteTable& routes);

  std::optional<std::size_t> select(std::span<const bool> tried, des::RandomStream& rng) override;
  [[nodiscard]] std::vector<double> weights() const override;
  [[nodiscard]] std::string name() const override { return "SP"; }

 private:
  std::vector<std::size_t> order_;  // member indices sorted by distance
  std::size_t group_size_;
};

}  // namespace anyqos::core
