#include "src/core/weights.h"

#include <algorithm>
#include <cmath>

#include "src/util/require.h"

namespace anyqos::core {

namespace {

std::vector<double> normalize(std::vector<double> raw) {
  double total = 0.0;
  for (const double w : raw) {
    util::require(w >= 0.0 && std::isfinite(w), "weights must be finite and non-negative");
    total += w;
  }
  util::require(total > 0.0, "weight normalization requires a positive total");
  for (double& w : raw) {
    w /= total;
  }
  return raw;
}

}  // namespace

WeightVector WeightVector::uniform(std::size_t k) {
  util::require(k >= 1, "weight vector needs at least one member");
  return WeightVector(std::vector<double>(k, 1.0 / static_cast<double>(k)));
}

WeightVector WeightVector::inverse_distance(std::span<const std::size_t> distances) {
  util::require(!distances.empty(), "weight vector needs at least one member");
  std::vector<double> raw;
  raw.reserve(distances.size());
  for (const std::size_t d : distances) {
    raw.push_back(1.0 / static_cast<double>(std::max<std::size_t>(d, 1)));
  }
  return WeightVector(normalize(std::move(raw)));
}

WeightVector WeightVector::bandwidth_distance(std::span<const double> bandwidths,
                                              std::span<const std::size_t> distances) {
  util::require(bandwidths.size() == distances.size(),
                "bandwidths and distances must have equal length");
  util::require(!bandwidths.empty(), "weight vector needs at least one member");
  std::vector<double> raw;
  raw.reserve(bandwidths.size());
  double total = 0.0;
  for (std::size_t i = 0; i < bandwidths.size(); ++i) {
    util::require(bandwidths[i] >= 0.0 && std::isfinite(bandwidths[i]),
                  "route bandwidths must be finite and non-negative");
    const double w = bandwidths[i] / static_cast<double>(std::max<std::size_t>(distances[i], 1));
    raw.push_back(w);
    total += w;
  }
  if (total <= 0.0) {
    return inverse_distance(distances);
  }
  return WeightVector(normalize(std::move(raw)));
}

WeightVector WeightVector::normalized(std::vector<double> raw) {
  util::require(!raw.empty(), "weight vector needs at least one member");
  return WeightVector(normalize(std::move(raw)));
}

double WeightVector::at(std::size_t i) const {
  util::require(i < weights_.size(), "weight index out of range");
  return weights_[i];
}

WeightVector WeightVector::masked(std::span<const bool> excluded) const {
  util::require(excluded.size() == weights_.size(), "mask length must match weight count");
  std::vector<double> raw(weights_.size(), 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (!excluded[i]) {
      raw[i] = weights_[i];
      total += weights_[i];
    }
  }
  if (total <= 0.0) {
    return WeightVector(std::move(raw));  // all-zero: caller checks is_zero()
  }
  for (double& w : raw) {
    w /= total;
  }
  return WeightVector(std::move(raw));
}

bool WeightVector::is_zero() const {
  return std::all_of(weights_.begin(), weights_.end(), [](double w) { return w == 0.0; });
}

bool WeightVector::normalized_within(double tolerance) const {
  double total = 0.0;
  for (const double w : weights_) {
    if (w < 0.0) {
      return false;
    }
    total += w;
  }
  return std::abs(total - 1.0) <= tolerance;
}

}  // namespace anyqos::core
