// Delay-to-bandwidth QoS mapping (paper Section 6, "Final Remarks").
//
// The paper's admission control handles bandwidth requirements and notes that
// an end-to-end delay requirement can be converted into a bandwidth
// requirement in networks with rate-based schedulers (WFQ, Virtual Clock):
// a flow served at rate g over h hops with maximum packet length L sees a
// worst-case queueing+transmission delay of roughly
//     D(g) = h * L / g + propagation,
// the classic WFQ/PGPS bound with L/g latency per hop. Inverting gives the
// minimum reservation rate for a delay bound. This module implements that
// conversion so the DAC procedure can admit delay-constrained anycast flows.
#pragma once

#include <cstddef>
#include <optional>

#include "src/net/topology.h"

namespace anyqos::core {

/// Parameters of the rate-based scheduler delay bound.
struct SchedulerModel {
  /// Maximum packet length in bits (default: 1500-byte MTU).
  double max_packet_bits = 1500.0 * 8.0;
  /// Fixed propagation + processing delay per hop, seconds.
  double per_hop_latency_s = 0.0;
};

/// A flow's QoS requirement: a rate floor, an optional end-to-end delay
/// bound, or both. The effective reservation is the larger of the rate floor
/// and the rate implied by the delay bound on the candidate route.
struct QosRequirement {
  net::Bandwidth min_bandwidth_bps = 0.0;
  std::optional<double> max_delay_s;  ///< end-to-end deadline
};

/// Worst-case end-to-end delay of a flow reserved at `rate_bps` across
/// `hops` hops under `model` (h*L/g + h*per_hop_latency).
/// Requires rate_bps > 0 and hops >= 1.
double wfq_delay_bound(net::Bandwidth rate_bps, std::size_t hops, const SchedulerModel& model);

/// Minimum rate meeting `delay_s` over `hops` hops under `model`.
/// Returns nullopt when the deadline is not achievable at any finite rate
/// (deadline <= fixed latency).
std::optional<net::Bandwidth> rate_for_delay(double delay_s, std::size_t hops,
                                             const SchedulerModel& model);

/// Effective bandwidth to reserve on a route of `hops` hops so that both the
/// rate floor and the delay bound (if any) hold. Returns nullopt when the
/// delay bound is infeasible on this route. This is the quantity the DAC
/// procedure should pass to resource reservation for a delay-constrained
/// anycast flow; note it grows with hops, so nearer members need less.
std::optional<net::Bandwidth> effective_bandwidth(const QosRequirement& qos, std::size_t hops,
                                                  const SchedulerModel& model);

}  // namespace anyqos::core
