// Retrial control (paper Section 4.5).
//
// After a failed reservation the DAC procedure consults retrial control to
// decide whether to try an alternative destination: more tries raise the
// admission probability but cost more signaling. The paper uses a simple
// counter bounded by R (the second element of the <A, R> system tuple).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace anyqos::core {

/// Decides whether the DAC loop may make another attempt.
class RetrialPolicy {
 public:
  virtual ~RetrialPolicy() = default;

  /// `attempts_made` counts destinations already tried for this request
  /// (>= 1 when consulted). Returns true to keep going.
  [[nodiscard]] virtual bool keep_going(std::size_t attempts_made) const = 0;

  /// Upper bound on attempts ever allowed (used to size reports).
  [[nodiscard]] virtual std::size_t max_attempts() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// The paper's counter-based scheme: allow attempts while c < R.
/// R == 1 means a single attempt with no retry.
class CounterRetrialPolicy final : public RetrialPolicy {
 public:
  explicit CounterRetrialPolicy(std::size_t max_tries);

  [[nodiscard]] bool keep_going(std::size_t attempts_made) const override;
  [[nodiscard]] std::size_t max_attempts() const override { return max_tries_; }
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t max_tries_;
};

/// Extension: stop early once the marginal gain is unlikely — allows up to
/// `max_tries` but stops after `max_consecutive_failures` failures in a row
/// against *distinct* members (useful on large groups; equivalent to the
/// counter policy when the two bounds match).
class BoundedFailureRetrialPolicy final : public RetrialPolicy {
 public:
  BoundedFailureRetrialPolicy(std::size_t max_tries, std::size_t max_consecutive_failures);

  [[nodiscard]] bool keep_going(std::size_t attempts_made) const override;
  [[nodiscard]] std::size_t max_attempts() const override { return max_tries_; }
  [[nodiscard]] std::string name() const override;

 private:
  std::size_t max_tries_;
  std::size_t max_failures_;
};

}  // namespace anyqos::core
