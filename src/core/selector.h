// Destination-selection interface (paper Section 4.3).
//
// A selector is bound to one AC-router (source) and one anycast group; it
// picks which member to try next during the DAC loop, and receives the
// reservation outcome so stateful algorithms (WD/D+H) can learn from it.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/core/group.h"
#include "src/des/random.h"
#include "src/net/routing.h"
#include "src/signaling/probe.h"

namespace anyqos::core {

/// Which destination-selection algorithm a DAC system runs (the `A` in the
/// paper's <A, R> system notation, plus the SP baseline policy).
enum class SelectionAlgorithm {
  kEvenDistribution,      // ED              — no status information
  kDistanceHistory,       // WD/D+H          — route distance + admission history
  kDistanceBandwidth,     // WD/D+B          — route distance + route bandwidth
  kShortestPath,          // SP baseline     — always the nearest member
};

/// Parses "ED", "WD/D+H", "WD/D+B", "SP" (case-sensitive, paper spelling).
SelectionAlgorithm parse_algorithm(const std::string& name);
std::string to_string(SelectionAlgorithm algorithm);

/// Per-(AC-router, group) destination selection strategy.
class DestinationSelector {
 public:
  virtual ~DestinationSelector() = default;

  /// Picks the member index to try next, given `tried[i]` marking members
  /// already attempted for this request. Returns nullopt when every member
  /// has been tried. `rng` supplies the randomized choice.
  virtual std::optional<std::size_t> select(std::span<const bool> tried,
                                            des::RandomStream& rng) = 0;

  /// Reports the reservation outcome of the most recent attempt on member
  /// `index`. Default: no-op (stateless algorithms).
  virtual void report(std::size_t index, bool admitted);

  /// The weight vector the next selection would draw from (before masking).
  /// Exposed for tests, examples, and monitoring.
  [[nodiscard]] virtual std::vector<double> weights() const = 0;

  /// Algorithm label for reports (matches the paper's names).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Everything needed to construct any selector for one (source, group) pair.
struct SelectorEnvironment {
  net::NodeId source = net::kInvalidNode;
  const AnycastGroup* group = nullptr;       ///< must outlive the selector
  const net::RouteTable* routes = nullptr;   ///< must outlive the selector
  /// Live route-bandwidth oracle; required by kDistanceBandwidth only.
  signaling::ProbeService* probe = nullptr;
  /// WD/D+H discount parameter alpha in [0,1] (paper leaves the evaluated
  /// value unstated; see DESIGN.md — default 0.5, swept by ablation_alpha).
  double alpha = 0.5;
  /// WD/D+B ablation: zero the weight of members whose probed route
  /// bandwidth cannot fit this bandwidth demand (off reproduces eq. 12).
  bool wdb_mask_infeasible = false;
  /// Flow demand used by wdb_mask_infeasible.
  net::Bandwidth flow_bandwidth = 0.0;
};

/// Factory covering all algorithms.
std::unique_ptr<DestinationSelector> make_selector(SelectionAlgorithm algorithm,
                                                   const SelectorEnvironment& env);

}  // namespace anyqos::core
