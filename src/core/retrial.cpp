#include "src/core/retrial.h"

#include <algorithm>

#include "src/util/require.h"

namespace anyqos::core {

CounterRetrialPolicy::CounterRetrialPolicy(std::size_t max_tries) : max_tries_(max_tries) {
  util::require(max_tries >= 1, "retrial bound R must be at least 1");
}

bool CounterRetrialPolicy::keep_going(std::size_t attempts_made) const {
  return attempts_made < max_tries_;
}

std::string CounterRetrialPolicy::name() const {
  return "counter(R=" + std::to_string(max_tries_) + ")";
}

BoundedFailureRetrialPolicy::BoundedFailureRetrialPolicy(std::size_t max_tries,
                                                         std::size_t max_consecutive_failures)
    : max_tries_(max_tries), max_failures_(max_consecutive_failures) {
  util::require(max_tries >= 1, "retrial bound must be at least 1");
  util::require(max_consecutive_failures >= 1, "failure bound must be at least 1");
}

bool BoundedFailureRetrialPolicy::keep_going(std::size_t attempts_made) const {
  // In the DAC loop every attempt so far has failed (a success returns
  // immediately), so attempts_made equals consecutive failures.
  return attempts_made < std::min(max_tries_, max_failures_);
}

std::string BoundedFailureRetrialPolicy::name() const {
  return "bounded(R=" + std::to_string(max_tries_) + ",F=" + std::to_string(max_failures_) + ")";
}

}  // namespace anyqos::core
