// The Distributed Admission Control procedure (paper Figure 1) and the GDI
// oracle baseline (Section 5.1).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "src/core/group.h"
#include "src/core/retrial.h"
#include "src/core/selector.h"
#include "src/des/random.h"
#include "src/net/routing.h"
#include "src/obs/span.h"
#include "src/signaling/rsvp.h"

namespace anyqos::core {

/// A request to establish one anycast flow with a bandwidth QoS requirement.
struct FlowRequest {
  net::NodeId source = net::kInvalidNode;  ///< AC-router receiving the request
  net::Bandwidth bandwidth_bps = 0.0;      ///< required bandwidth (paper: 64 kbit/s)
  /// Caller-assigned correlation id propagated into decision spans and flow
  /// traces (the simulation stamps its arrival sequence number; 0 = unset).
  std::uint64_t request_id = 0;
};

/// Outcome of running the DAC procedure for one request.
struct AdmissionDecision {
  bool admitted = false;
  /// Group-member index the flow was pinned to (set iff admitted).
  std::optional<std::size_t> destination_index;
  /// The reserved route (set iff admitted); release it at flow departure.
  net::Path route;
  /// Destinations tried, 1..R ("number of retrials" in the paper's metric).
  std::size_t attempts = 0;
  /// Signaling messages this decision generated.
  std::uint64_t messages = 0;
};

/// Observes the DAC loop attempt by attempt. Implemented by instrumentation
/// such as audit::InvariantAuditor to verify retrial-control invariants
/// (no destination tried twice per request, attempts <= R).
class AdmissionObserver {
 public:
  virtual ~AdmissionObserver() = default;

  /// A new request entered the Figure 1 loop at AC-router `source`.
  virtual void on_request_begin(net::NodeId source) = 0;
  /// The loop is about to try group member `member_index`.
  virtual void on_attempt(net::NodeId source, std::size_t member_index) = 0;
  /// The loop finished; `max_attempts` is the retrial policy's bound R and
  /// `group_size` the number of members K.
  virtual void on_decision(net::NodeId source, const AdmissionDecision& decision,
                           std::size_t max_attempts, std::size_t group_size) = 0;
};

/// Vetoes individual group members before the selector sees them and hears
/// every attempt's reservation outcome. Implemented by the overload
/// governor's per-member circuit breakers: a vetoed member enters the DAC
/// loop pre-marked as tried, so the selector's masking machinery zeroes its
/// weight and renormalizes over the remaining members — the same mechanism
/// that excludes churned-down members. Consulted only for members that are
/// up (down members are excluded before the gate is asked).
class MemberGate {
 public:
  virtual ~MemberGate() = default;

  /// False excludes `member_index` from this request's selection.
  [[nodiscard]] virtual bool allow_member(std::size_t member_index) = 0;

  /// The reservation outcome of one attempt against `member_index` (called
  /// once per attempt, after the selector's report()).
  virtual void on_member_result(std::size_t member_index,
                                const signaling::ReservationResult& result) = 0;
};

/// One AC-router's admission controller for one anycast group: owns the
/// destination selector state (weights, history) and executes Figure 1's
/// select -> reserve -> retry loop.
class AdmissionController {
 public:
  /// All referenced objects must outlive the controller. `selector` and
  /// `retrial` must be non-null.
  AdmissionController(net::NodeId source, const AnycastGroup& group,
                      const net::RouteTable& routes, signaling::ReservationProtocol& rsvp,
                      std::unique_ptr<DestinationSelector> selector,
                      std::unique_ptr<RetrialPolicy> retrial);

  /// Runs the DAC procedure for `request` (request.source must equal this
  /// controller's source). On admission the bandwidth is reserved along the
  /// returned route; the caller must eventually release it (Flow teardown).
  /// Discarding the result leaks the reservation, hence [[nodiscard]].
  [[nodiscard]] AdmissionDecision admit(const FlowRequest& request, des::RandomStream& rng);

  /// Releases an admitted flow's reservation (TEAR signaling included).
  void release(const AdmissionDecision& decision, net::Bandwidth bandwidth_bps);

  /// Registers `observer` to see every subsequent admit() loop (nullptr
  /// detaches). At most one observer; it must outlive the controller or be
  /// detached first.
  void set_observer(AdmissionObserver* observer) { observer_ = observer; }

  /// Registers `tracer` to receive a DecisionSpan (with per-attempt child
  /// spans) for every subsequent admit() (nullptr detaches). Collection is
  /// skipped entirely — no snapshots, no allocation — while the tracer has
  /// no sink attached. The tracer must outlive the controller or be
  /// detached first.
  void set_tracer(obs::DecisionTracer* tracer) { tracer_ = tracer; }

  /// Registers `gate` to veto members and observe per-attempt reservation
  /// outcomes (nullptr detaches). At most one gate; it must outlive the
  /// controller or be detached first. When the gate vetoes every live
  /// member the request is rejected with zero attempts, exactly as when
  /// every member is down.
  void set_member_gate(MemberGate* gate) { gate_ = gate; }

  [[nodiscard]] net::NodeId source() const { return source_; }
  [[nodiscard]] const DestinationSelector& selector() const { return *selector_; }
  [[nodiscard]] const RetrialPolicy& retrial_policy() const { return *retrial_; }

 private:
  net::NodeId source_;
  const AnycastGroup* group_;
  const net::RouteTable* routes_;
  signaling::ReservationProtocol* rsvp_;
  std::unique_ptr<DestinationSelector> selector_;
  std::unique_ptr<RetrialPolicy> retrial_;
  AdmissionObserver* observer_ = nullptr;
  obs::DecisionTracer* tracer_ = nullptr;
  MemberGate* gate_ = nullptr;
};

/// GDI baseline: perfect global knowledge, free path choice. A request is
/// admitted iff *some* path with sufficient available bandwidth exists to
/// *some* group member; we route it on the shortest such path. "Obviously,
/// its performance is ideal, but it is not realistic" — it exists to bound
/// the DAC systems from above, so it bypasses signaling (messages = 0).
class GlobalAdmissionOracle {
 public:
  /// References must outlive the oracle.
  GlobalAdmissionOracle(const net::Topology& topology, net::BandwidthLedger& ledger,
                        const AnycastGroup& group);

  /// Admits via exhaustive feasible-path search; reserves on success.
  /// Discarding the result leaks the reservation, hence [[nodiscard]].
  [[nodiscard]] AdmissionDecision admit(const FlowRequest& request);

  /// Releases an admitted flow's reservation.
  void release(const AdmissionDecision& decision, net::Bandwidth bandwidth_bps);

 private:
  const net::Topology* topology_;
  net::BandwidthLedger* ledger_;
  const AnycastGroup* group_;
};

}  // namespace anyqos::core
