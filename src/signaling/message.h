// Signaling message taxonomy and accounting.
//
// The paper reserves resources "by the standard RSVP protocol" and measures
// overhead via the number of reservation messages (Section 5.1's second
// metric is directly proportional to them). We model signaling at message
// granularity: each hop a control message traverses counts as one message.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace anyqos::signaling {

/// Control message kinds, RSVP-flavoured.
enum class MessageKind : std::uint8_t {
  kPath,       // downstream setup probe (RSVP PATH)
  kResv,       // upstream reservation (RSVP RESV)
  kPathErr,    // downstream failure unwinding toward the source
  kTear,       // reservation teardown at flow departure
  kProbe,      // bandwidth query used by WD/D+B (extended RSVP)
  kProbeReply, // bandwidth query response
};

/// Number of distinct MessageKind values.
inline constexpr std::size_t kMessageKindCount = 6;

/// Human-readable name for reports.
std::string to_string(MessageKind kind);

/// Per-kind hop-count tallies of control messages.
///
/// One unit == one control message traversing one link. This matches the
/// paper's observation that overhead is proportional to signaling traffic.
class MessageCounter {
 public:
  /// Records `hops` link traversals of a `kind` message.
  void count(MessageKind kind, std::uint64_t hops);

  [[nodiscard]] std::uint64_t total() const;
  [[nodiscard]] std::uint64_t by_kind(MessageKind kind) const;
  /// Sum of setup-time kinds (PATH/RESV/PATH_ERR/PROBE/PROBE_REPLY),
  /// i.e. everything except teardown.
  [[nodiscard]] std::uint64_t setup_total() const;

  void reset();
  /// Adds another counter's tallies into this one.
  void merge(const MessageCounter& other);

 private:
  std::array<std::uint64_t, kMessageKindCount> counts_{};
};

}  // namespace anyqos::signaling
