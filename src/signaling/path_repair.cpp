#include "src/signaling/path_repair.h"

#include <algorithm>
#include <utility>

#include "src/util/require.h"

namespace anyqos::signaling {

PathRepair::PathRepair(ReservationProtocol& protocol) : protocol_(&protocol) {}

void PathRepair::add(BrokenFlow flow, const net::Path& held) {
  util::require(flow.bandwidth_bps > 0.0, "broken flow must carry bandwidth");
  util::require(queue_.find(flow.flow_id) == queue_.end(), "flow is already queued for repair");
  util::require(flow.remnant.hops() <= held.hops(), "remnant cannot exceed the held path");
  protocol_->narrow(held, flow.remnant, flow.bandwidth_bps);
  stats_.links_released += held.hops() - flow.remnant.hops();
  ++stats_.broken;
  queue_.emplace(flow.flow_id, std::move(flow));
}

void PathRepair::on_link_failing(net::LinkId id) {
  for (auto& [flow_id, flow] : queue_) {
    const auto it = std::find(flow.remnant.links.begin(), flow.remnant.links.end(), id);
    if (it == flow.remnant.links.end()) {
      continue;
    }
    net::Path narrowed = flow.remnant;
    narrowed.links.erase(narrowed.links.begin() + (it - flow.remnant.links.begin()));
    protocol_->narrow(flow.remnant, narrowed, flow.bandwidth_bps);
    flow.remnant = std::move(narrowed);
    ++stats_.links_released;
  }
}

void PathRepair::surrender_remnant(std::uint64_t flow_id) {
  const auto it = queue_.find(flow_id);
  util::require(it != queue_.end(), "flow is not queued for repair");
  BrokenFlow& flow = it->second;
  if (flow.remnant.links.empty()) {
    return;
  }
  stats_.links_released += flow.remnant.hops();
  protocol_->force_teardown(flow.remnant, flow.bandwidth_bps);
  flow.remnant.links.clear();
}

BrokenFlow PathRepair::resolve(std::uint64_t flow_id, Resolution resolution) {
  const auto it = queue_.find(flow_id);
  util::require(it != queue_.end(), "flow is not queued for repair");
  BrokenFlow flow = std::move(it->second);
  queue_.erase(it);
  if (!flow.remnant.links.empty()) {
    protocol_->force_teardown(flow.remnant, flow.bandwidth_bps);
  } else if (resolution == Resolution::kRepaired) {
    ++stats_.break_before_make;
  }
  switch (resolution) {
    case Resolution::kRepaired:
      ++stats_.repaired;
      break;
    case Resolution::kUnrepairable:
      ++stats_.unrepairable;
      break;
    case Resolution::kExpired:
      ++stats_.expired_in_queue;
      break;
  }
  return flow;
}

bool PathRepair::contains(std::uint64_t flow_id) const {
  return queue_.find(flow_id) != queue_.end();
}

std::vector<std::uint64_t> PathRepair::pending_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(queue_.size());
  for (const auto& [flow_id, flow] : queue_) {
    ids.push_back(flow_id);
  }
  return ids;
}

const BrokenFlow& PathRepair::broken(std::uint64_t flow_id) const {
  const auto it = queue_.find(flow_id);
  util::require(it != queue_.end(), "flow is not queued for repair");
  return it->second;
}

}  // namespace anyqos::signaling
