// Path repair: re-signaling active flows whose route lost a link or router.
//
// The paper's model tears a flow down when anything on its fixed route dies.
// Real deployments re-route: once the routing plane reconverges, the source
// re-signals the flow over the new route (RSVP "local repair" in spirit).
// PathRepair is the queue between those two moments. When a link on an
// active flow's route fails, the flow moves here holding a *narrowed*
// reservation — the surviving links stay reserved (make-before-break capital)
// while the dead ones are released so the ledger can take them out of
// service. After reconvergence the simulation walks the queue in flow-id
// order and either repairs each flow (reserve the new route, then release
// the remnant) or declares it unrepairable (endpoint dead, partitioned, or
// no capacity) and drops it.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/net/bandwidth.h"
#include "src/signaling/rsvp.h"

namespace anyqos::signaling {

/// An admitted flow displaced from the active set by a failure on its route.
struct BrokenFlow {
  std::uint64_t flow_id = 0;
  std::uint64_t request_id = 0;
  net::NodeId source = 0;
  std::size_t destination_index = 0;
  net::Bandwidth bandwidth_bps = 0.0;
  /// Links of the original route still reserved in the ledger. Not a
  /// contiguous path — purely a reservation remnant. Empty once every link
  /// of the route has died (the break-before-make case).
  net::Path remnant;
  double admitted_at = 0.0;
  double broken_at = 0.0;
};

struct PathRepairStats {
  std::uint64_t broken = 0;            ///< flows that entered the queue
  std::uint64_t repaired = 0;          ///< re-signaled onto a live route
  std::uint64_t unrepairable = 0;      ///< dropped: dead endpoint / no route / no capacity
  std::uint64_t expired_in_queue = 0;  ///< holding time elapsed while still broken
  std::uint64_t break_before_make = 0; ///< repairs that completed with no remnant held
  std::uint64_t links_released = 0;    ///< links narrowed out of queued reservations
};

/// Holds broken flows between a failure and the post-reconvergence repair
/// pass. All reservation bookkeeping (narrow on entry, further narrows as
/// more links die, remnant release on resolution) funnels through the
/// ReservationProtocol so TEAR hops land in the message counter — the chaos
/// harness's exact hops reconciliation survives repair storms.
class PathRepair {
 public:
  /// `protocol` must outlive the service.
  explicit PathRepair(ReservationProtocol& protocol);

  PathRepair(const PathRepair&) = delete;
  PathRepair& operator=(const PathRepair&) = delete;

  /// Queues a broken flow. `held` is the path whose reservation the flow
  /// currently holds; it is narrowed down to `flow.remnant` (dead links
  /// released, TEAR hops charged). `flow.flow_id` must not be queued.
  void add(BrokenFlow flow, const net::Path& held);

  /// Directed link `id` is about to be taken out of service: narrows every
  /// queued remnant crossing it so the ledger sees the link idle.
  void on_link_failing(net::LinkId id);

  /// Releases `flow_id`'s remnant reservation while keeping the flow queued:
  /// the break-before-make fallback. The remnant's own bandwidth counts
  /// against links it shares with the replacement route, so when a
  /// make-before-break reserve fails the caller surrenders the remnant and
  /// retries once against the freed capacity. No-op on an empty remnant.
  void surrender_remnant(std::uint64_t flow_id);

  /// Why a queued flow is leaving the queue.
  enum class Resolution {
    kRepaired,      ///< caller reserved the new route first (make-before-break)
    kUnrepairable,  ///< no live route/member/capacity — the flow is dropped
    kExpired,       ///< the flow's holding time elapsed while broken
  };

  /// Removes `flow_id` from the queue, releases its remnant reservation (if
  /// any), and returns the record. For kRepaired the caller must have
  /// reserved the replacement route *before* calling — the remnant is the
  /// make-before-break capital and is only surrendered here.
  BrokenFlow resolve(std::uint64_t flow_id, Resolution resolution);

  [[nodiscard]] bool contains(std::uint64_t flow_id) const;
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  /// Queued flow ids, ascending — the deterministic repair order.
  [[nodiscard]] std::vector<std::uint64_t> pending_ids() const;
  [[nodiscard]] const BrokenFlow& broken(std::uint64_t flow_id) const;
  [[nodiscard]] const PathRepairStats& stats() const { return stats_; }

 private:
  ReservationProtocol* protocol_;
  std::map<std::uint64_t, BrokenFlow> queue_;  // keyed by flow id: ordered, deterministic
  PathRepairStats stats_;
};

}  // namespace anyqos::signaling
