#include "src/signaling/probe.h"

namespace anyqos::signaling {

ProbeService::ProbeService(const net::BandwidthLedger& ledger, MessageCounter& counter)
    : ledger_(&ledger), counter_(&counter) {}

net::Bandwidth ProbeService::route_bandwidth(const net::Path& route) {
  counter_->count(MessageKind::kProbe, route.hops());
  counter_->count(MessageKind::kProbeReply, route.hops());
  return ledger_->bottleneck(route);
}

}  // namespace anyqos::signaling
