// Control-plane fault injection (robustness extension).
//
// Section 3 assumes the signaling network is fault-free; the FaultPlane is
// the single point where that assumption is broken on purpose. Every control
// message the resilient protocol moves (PATH/RESV/TEAR/PATH_ERR) consults it
// hop by hop: a hop may silently drop the message (per-hop Bernoulli loss),
// delay it (per-hop latency plus jitter), or kill it outright because the
// directed link it would cross is out of service (outage awareness — a dead
// link delivers nothing, it does not politely return an error).
//
// The plane is pure policy: it owns no timers and mutates no ledger. It
// tallies what it injected so chaos runs can reconcile "messages lost" with
// "retransmits sent" exactly.
#pragma once

#include <cstdint>

#include "src/des/random.h"
#include "src/net/bandwidth.h"

namespace anyqos::signaling {

/// Knobs for control-message fault injection. All-defaults means a perfect
/// network (nothing dropped, nothing delayed) — the paper's Section 3 model.
struct FaultPlaneOptions {
  /// Probability that any one hop traversal silently loses the message.
  double loss_probability = 0.0;
  /// Deterministic one-way latency a message spends crossing one hop.
  double hop_delay_s = 0.0;
  /// Uniform extra delay in [0, jitter] added per hop on top of hop_delay_s.
  double hop_jitter_s = 0.0;
};

/// What happened to one hop traversal.
enum class HopOutcome : std::uint8_t {
  kDelivered,  // the message crossed the hop
  kLost,       // random loss swallowed it
  kLinkDown,   // the directed link is out of service
};

/// Per-hop fault decisions for control messages.
class FaultPlane {
 public:
  /// `ledger` supplies link up/down state and `rng` drives loss and jitter;
  /// both must outlive the plane.
  FaultPlane(const net::BandwidthLedger& ledger, des::RandomStream& rng,
             FaultPlaneOptions options);

  /// Decides the fate of a message about to cross directed link `link`.
  /// Loss and outage are tallied; delay accrues into delay_injected_s().
  HopOutcome traverse(net::LinkId link);

  /// True when every knob is at its fault-free default.
  [[nodiscard]] bool perfect() const;

  [[nodiscard]] const FaultPlaneOptions& options() const { return options_; }
  /// Hop traversals that lost a message to random loss.
  [[nodiscard]] std::uint64_t messages_lost() const { return lost_; }
  /// Hop traversals that died on an out-of-service link.
  [[nodiscard]] std::uint64_t messages_killed_by_outage() const { return killed_; }
  /// Total injected latency over the plane's lifetime, simulated seconds.
  [[nodiscard]] double delay_injected_s() const { return delay_injected_s_; }

 private:
  const net::BandwidthLedger* ledger_;
  des::RandomStream* rng_;
  FaultPlaneOptions options_;
  std::uint64_t lost_ = 0;
  std::uint64_t killed_ = 0;
  double delay_injected_s_ = 0.0;
};

}  // namespace anyqos::signaling
