#include "src/signaling/soft_state.h"

#include <algorithm>
#include <vector>

#include "src/util/annotations.h"
#include "src/util/require.h"

namespace anyqos::signaling {

SoftStateManager::SoftStateManager(des::Simulator& simulator, net::BandwidthLedger& ledger,
                                   MessageCounter& counter, des::RandomStream& rng,
                                   SoftStateOptions options)
    : simulator_(&simulator),
      cat_refresh_(simulator.category("signaling.refresh")),
      ledger_(&ledger),
      counter_(&counter),
      rng_(&rng),
      options_(options) {
  util::require(options.refresh_interval_s > 0.0, "refresh interval must be positive");
  util::require(options.lifetime_refreshes >= 1, "lifetime must be at least one refresh");
  util::require(options.refresh_loss_probability >= 0.0 &&
                    options.refresh_loss_probability < 1.0,
                "refresh loss probability must be in [0,1)");
}

SessionId SoftStateManager::install(net::Path route, net::Bandwidth bandwidth_bps,
                                    ExpiryCallback on_expiry) {
  util::require(bandwidth_bps > 0.0, "session bandwidth must be positive");
  const SessionId id = next_id_++;
  Session session;
  session.route = std::move(route);
  session.bandwidth = bandwidth_bps;
  session.on_expiry = std::move(on_expiry);
  sessions_.emplace(id, std::move(session));
  schedule_refresh(id);
  return id;
}

void SoftStateManager::schedule_refresh(SessionId id) {
  Session& session = sessions_.at(id);
  session.timer =
      simulator_->schedule_in(options_.refresh_interval_s, cat_refresh_,
                              [this, id] { refresh(id); });
}

void SoftStateManager::refresh(SessionId id) {
  const auto it = sessions_.find(id);
  util::ensure(it != sessions_.end(), "refresh fired for a dead session");
  Session& session = it->second;
  if (rng_->bernoulli(options_.refresh_loss_probability)) {
    ++session.missed;
    if (session.missed >= options_.lifetime_refreshes) {
      // Cleanup timeout: routers silently drop the state; no TEAR travels.
      ledger_->release(session.route, session.bandwidth);
      const ExpiryCallback callback = std::move(session.on_expiry);
      sessions_.erase(it);
      ++expired_;
      if (callback) {
        callback(id);
      }
      return;
    }
  } else {
    session.missed = 0;
    // A successful refresh re-walks the route: PATH downstream, RESV back.
    counter_->count(MessageKind::kPath, session.route.hops());
    counter_->count(MessageKind::kResv, session.route.hops());
  }
  schedule_refresh(id);
}

void SoftStateManager::remove(SessionId id) {
  const auto it = sessions_.find(id);
  util::require(it != sessions_.end(), "unknown or expired session");
  Session& session = it->second;
  simulator_->cancel(session.timer);
  ledger_->release(session.route, session.bandwidth);
  counter_->count(MessageKind::kTear, session.route.hops());
  sessions_.erase(it);
}

bool SoftStateManager::alive(SessionId id) const {
  return sessions_.find(id) != sessions_.end();
}

void SoftStateManager::for_each_session(
    const std::function<void(const SessionView&)>& fn) const {
  // Callers feed artifacts (auditor reports, monitoring dumps), so the visit
  // order must not depend on hash-table layout: sorted-key extraction.
  std::vector<SessionId> ids;
  ids.reserve(sessions_.size());
  ANYQOS_DETLINT_ALLOW(unordered_artifact_iteration, "sorted-key extraction");
  for (const auto& [id, session] : sessions_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const SessionId id : ids) {
    const Session& session = sessions_.at(id);
    SessionView view;
    view.id = id;
    view.route = &session.route;
    view.bandwidth = session.bandwidth;
    view.missed = session.missed;
    fn(view);
  }
}

}  // namespace anyqos::signaling
