#include "src/signaling/fault_plane.h"

#include "src/util/require.h"

namespace anyqos::signaling {

FaultPlane::FaultPlane(const net::BandwidthLedger& ledger, des::RandomStream& rng,
                       FaultPlaneOptions options)
    : ledger_(&ledger), rng_(&rng), options_(options) {
  util::require(options.loss_probability >= 0.0 && options.loss_probability <= 1.0,
                "message loss probability must be in [0,1]");
  util::require(options.hop_delay_s >= 0.0, "hop delay must be non-negative");
  util::require(options.hop_jitter_s >= 0.0, "hop jitter must be non-negative");
}

HopOutcome FaultPlane::traverse(net::LinkId link) {
  if (ledger_->is_failed(link)) {
    ++killed_;
    return HopOutcome::kLinkDown;
  }
  if (options_.loss_probability > 0.0 && rng_->bernoulli(options_.loss_probability)) {
    ++lost_;
    return HopOutcome::kLost;
  }
  double delay = options_.hop_delay_s;
  if (options_.hop_jitter_s > 0.0) {
    delay += rng_->uniform(0.0, options_.hop_jitter_s);
  }
  delay_injected_s_ += delay;
  return HopOutcome::kDelivered;
}

bool FaultPlane::perfect() const {
  return options_.loss_probability == 0.0 && options_.hop_delay_s == 0.0 &&
         options_.hop_jitter_s == 0.0;
}

}  // namespace anyqos::signaling
