// Failure-aware RSVP: timeouts, retransmission with backoff, orphan reclaim.
//
// Section 3 notes the fault-free assumption "can be extended to deal with
// the situation when this assumption does not hold"; this is that extension
// for the signaling plane. The resilient protocol runs the same two-pass
// PATH/RESV walk as the base ReservationProtocol, but every hop goes through
// a FaultPlane that may lose, delay, or outage-kill the message. The source
// recovers the way RSVP sources do:
//
//   * A walk that dies in flight (lost PATH, lost PATH_ERR, lost RESV, or a
//     message swallowed by a link outage) produces no response, so the
//     source times out and retransmits with exponential backoff plus jitter,
//     up to a bounded number of retransmissions.
//   * A lost RESV leaves the reservation *installed* but unconfirmed — an
//     orphan. Orphans are reclaimed by soft-state expiry: a des::Simulator
//     timer releases the bandwidth orphan_hold_s later, exactly like routers
//     timing out unrefreshed state.
//   * A lost TEAR leaves a departed flow's bandwidth leaked until the same
//     soft-state expiry reclaims it. (State is path-granular here, so the
//     whole route is reclaimed at once; per-hop partial teardown is below
//     this model's resolution.)
//   * When a link is about to be taken out of service, on_link_failing()
//     immediately reclaims every orphan crossing it — state on a dead link
//     vanishes with the link, and the ledger requires failed links idle.
//
// Every walk — original or retransmitted — is charged to the shared
// MessageCounter at hop granularity, so the paper's overhead metric
// naturally includes the retry traffic. ResilienceStats mirrors the hops
// this protocol contributed, letting tests reconcile the two tallies
// exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/des/random.h"
#include "src/des/simulator.h"
#include "src/signaling/fault_plane.h"
#include "src/signaling/rsvp.h"

namespace anyqos::signaling {

/// Recovery knobs layered on top of the FaultPlane's injection knobs.
struct ResilienceOptions {
  FaultPlaneOptions faults;            ///< what the network does to messages
  double retransmit_timeout_s = 1.0;   ///< wait before the first retransmit
  double backoff_factor = 2.0;         ///< timeout multiplier per retransmit
  double backoff_jitter = 0.1;         ///< uniform extra fraction of timeout
  std::size_t max_retransmits = 3;     ///< re-sends after the original PATH
  /// Soft-state hold time before an orphaned reservation (lost RESV or lost
  /// TEAR) is reclaimed and its bandwidth released.
  double orphan_hold_s = 30.0;
};

/// Control-plane recovery tallies, reconcilable against the MessageCounter.
struct ResilienceStats {
  std::uint64_t timeouts = 0;          ///< source waits that expired unanswered
  std::uint64_t retransmits = 0;       ///< PATH re-sends after a timeout
  std::uint64_t give_ups = 0;          ///< reservations abandoned on budget exhaustion
  std::uint64_t resv_orphans = 0;      ///< reservations orphaned by a lost RESV
  std::uint64_t tear_orphans = 0;      ///< reservations leaked by a lost TEAR
  std::uint64_t orphans_reclaimed = 0; ///< soft-state expiries that released state
  std::uint64_t messages_lost = 0;     ///< hop traversals lost to random loss
  std::uint64_t messages_killed_by_outage = 0;  ///< traversals onto a dead link
  /// Total bandwidth released by orphan reclamation, bit/s summed per event.
  net::Bandwidth orphaned_bandwidth_reclaimed_bps = 0.0;
  /// Hop traversals this protocol charged to the MessageCounter; equals the
  /// counter's total when nothing else (probes, soft-state refreshes) shares
  /// the counter. The exact-reconciliation hook for chaos tests.
  std::uint64_t hops_counted = 0;
};

/// ReservationProtocol with fault injection and timeout/retransmission
/// recovery. Drop-in for the base class anywhere a ReservationProtocol& is
/// taken (AdmissionController, CentralizedController, Simulation).
class ResilientReservationProtocol final : public ReservationProtocol {
 public:
  /// All references must outlive the protocol. `simulator` hosts the orphan
  /// soft-state timers; `rng` drives loss, jitter, and backoff draws.
  ResilientReservationProtocol(net::BandwidthLedger& ledger, MessageCounter& counter,
                               des::Simulator& simulator, des::RandomStream& rng,
                               ResilienceOptions options);
  ~ResilientReservationProtocol() override;

  [[nodiscard]] ReservationResult reserve(const net::Path& route,
                                          net::Bandwidth bandwidth) override;
  void teardown(const net::Path& route, net::Bandwidth bandwidth) override;
  void on_link_failing(net::LinkId id) override;
  [[nodiscard]] double consume_pending_wait() override;

  /// Orphaned reservations still holding bandwidth (reclaim timer pending).
  [[nodiscard]] std::size_t pending_orphans() const { return orphans_.size(); }
  /// Bandwidth currently held by pending orphans, bit/s summed per orphan.
  [[nodiscard]] net::Bandwidth orphaned_bandwidth_bps() const;

  /// Leak repair: releases every pending orphan immediately (cancelling its
  /// timer) and returns how many were reclaimed. The chaos harness calls
  /// this when the InvariantAuditor reports open reservations at quiescence.
  std::size_t reclaim_pending();

  /// Observer for the two diagnosable give-up moments of the recovery
  /// machinery: `kind` is "retransmit_exhaustion" (a reservation abandoned
  /// with its retransmit budget spent) or "orphan_expiry" (a soft-state
  /// timer reclaimed an orphaned reservation). Cancelled-timer reclaims
  /// (link failing, reclaim_pending) are repairs, not expiries, and do not
  /// fire the hook. The simulation wires this to the flight recorder so
  /// both moments trigger a causal snapshot. nullptr detaches.
  using RecoveryHook =
      std::function<void(double time, std::string_view kind, const std::string& detail)>;
  void set_recovery_hook(RecoveryHook hook) { recovery_hook_ = std::move(hook); }

  /// Recovery tallies so far (loss counts folded in from the FaultPlane).
  [[nodiscard]] ResilienceStats stats() const;

  [[nodiscard]] const ResilienceOptions& options() const { return options_; }
  [[nodiscard]] const FaultPlane& fault_plane() const { return plane_; }

 private:
  /// Charges the shared counter and mirrors the contribution into
  /// ResilienceStats::hops_counted; force_teardown() funnels through here
  /// too, so forced fault-drop TEARs stay reconcilable.
  void count_hops(MessageKind kind, std::uint64_t hops) override;
  /// Registers an orphaned (still installed) reservation for reclamation.
  void add_orphan(const net::Path& route, net::Bandwidth bandwidth);
  /// `expired` distinguishes a soft-state timer firing (fires the recovery
  /// hook) from a cancelled-timer repair path (silent).
  void reclaim_orphan(std::uint64_t id, bool expired);
  /// Waits out timeout number `retransmit_index` (0 = original send).
  void wait_timeout(std::size_t retransmit_index);

  struct Orphan {
    net::Path route;
    net::Bandwidth bandwidth = 0.0;
    des::EventHandle timer;
  };

  des::Simulator* simulator_;
  des::EventCategory cat_orphan_;  // "signaling.orphan" kernel tag
  des::RandomStream* rng_;
  ResilienceOptions options_;
  FaultPlane plane_;
  ResilienceStats stats_;
  std::unordered_map<std::uint64_t, Orphan> orphans_;
  std::uint64_t next_orphan_id_ = 1;
  RecoveryHook recovery_hook_;
  double pending_wait_s_ = 0.0;
  double plane_delay_seen_s_ = 0.0;  // FaultPlane delay already drained
};

}  // namespace anyqos::signaling
