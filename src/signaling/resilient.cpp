#include "src/signaling/resilient.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/util/annotations.h"
#include "src/util/require.h"

namespace anyqos::signaling {

ResilientReservationProtocol::ResilientReservationProtocol(
    net::BandwidthLedger& ledger, MessageCounter& counter, des::Simulator& simulator,
    des::RandomStream& rng, ResilienceOptions options)
    : ReservationProtocol(ledger, counter),
      simulator_(&simulator),
      cat_orphan_(simulator.category("signaling.orphan")),
      rng_(&rng),
      options_(options),
      plane_(ledger, rng, options.faults) {
  util::require(options.retransmit_timeout_s > 0.0, "retransmit timeout must be positive");
  util::require(options.backoff_factor >= 1.0, "backoff factor must be at least 1");
  util::require(options.backoff_jitter >= 0.0, "backoff jitter must be non-negative");
  util::require(options.orphan_hold_s > 0.0, "orphan hold time must be positive");
}

ResilientReservationProtocol::~ResilientReservationProtocol() {
  // Orphan timers capture `this`; cancel them so a reclaim cannot fire into
  // a destroyed protocol if the simulator keeps running. The bandwidth stays
  // reserved — whoever destroys the protocol mid-run owns that state.
  ANYQOS_DETLINT_ALLOW(unordered_artifact_iteration, "order-insensitive cancel");
  for (auto& [id, orphan] : orphans_) {
    simulator_->cancel(orphan.timer);
  }
}

void ResilientReservationProtocol::count_hops(MessageKind kind, std::uint64_t hops) {
  message_counter().count(kind, hops);
  stats_.hops_counted += hops;
}

void ResilientReservationProtocol::wait_timeout(std::size_t retransmit_index) {
  ++stats_.timeouts;
  double timeout = options_.retransmit_timeout_s *
                   std::pow(options_.backoff_factor, static_cast<double>(retransmit_index));
  if (options_.backoff_jitter > 0.0) {
    timeout *= 1.0 + options_.backoff_jitter * rng_->uniform01();
  }
  pending_wait_s_ += timeout;
}

ReservationResult ResilientReservationProtocol::reserve(const net::Path& route,
                                                        net::Bandwidth bandwidth) {
  util::require(bandwidth > 0.0, "reservation bandwidth must be positive");
  const net::Topology& topology = ledger().topology();
  ReservationResult result;
  std::uint64_t charged = 0;  // hops this decision put on the wire
  const double delay_before = plane_.delay_injected_s();
  // Each iteration is one PATH send: the original plus max_retransmits
  // re-sends, every one a full (attempted) PATH/RESV or PATH/PATH_ERR
  // exchange through the fault plane.
  for (std::size_t send = 0; send <= options_.max_retransmits; ++send) {
    if (send > 0) {
      ++stats_.retransmits;
      ++result.retransmits;
    }
    // Downstream PATH walk: dies on a lost/outaged hop, stops at the first
    // link that cannot admit the flow, or reaches the destination.
    std::uint64_t traversed = 0;
    bool died = false;
    std::optional<net::LinkId> blocked;
    net::Bandwidth bottleneck = std::numeric_limits<net::Bandwidth>::infinity();
    for (const net::LinkId id : route.links) {
      ++traversed;  // the PATH message crosses this link (or dies on it)
      if (plane_.traverse(id) != HopOutcome::kDelivered) {
        died = true;
        break;
      }
      bottleneck = std::min(bottleneck, ledger().available(id));
      if (ledger().available(id) < bandwidth) {
        blocked = id;
        break;
      }
    }
    count_hops(MessageKind::kPath, traversed);
    charged += traversed;
    if (died) {
      // No response will ever come: the source times out and retransmits.
      wait_timeout(send);
      continue;
    }
    // The last walk that completed defines the diagnostic view.
    result.bottleneck_bps = bottleneck;
    result.blocking_link = blocked;
    if (blocked.has_value()) {
      // PATH_ERR unwinds upstream over the links already traversed; if it is
      // lost the source cannot distinguish rejection from loss and must
      // retransmit the PATH.
      std::uint64_t err_hops = 0;
      bool err_died = false;
      for (std::size_t i = traversed; i-- > 0;) {
        ++err_hops;
        if (plane_.traverse(topology.reverse_link(route.links[i])) != HopOutcome::kDelivered) {
          err_died = true;
          break;
        }
      }
      count_hops(MessageKind::kPathErr, err_hops);
      charged += err_hops;
      if (err_died) {
        wait_timeout(send);
        continue;
      }
      result.messages = charged;
      pending_wait_s_ += plane_.delay_injected_s() - delay_before;
      return result;  // definitive rejection
    }
    // Every hop admits the flow: install the reservation, confirm upstream.
    const bool ok = ledger().reserve(route, bandwidth);
    util::ensure(ok, "RESV failed after PATH admitted every hop");
    std::uint64_t resv_hops = 0;
    bool resv_died = false;
    for (std::size_t i = route.links.size(); i-- > 0;) {
      ++resv_hops;
      if (plane_.traverse(topology.reverse_link(route.links[i])) != HopOutcome::kDelivered) {
        resv_died = true;
        break;
      }
    }
    count_hops(MessageKind::kResv, resv_hops);
    charged += resv_hops;
    if (resv_died) {
      // The reservation is installed downstream but the source never learns:
      // orphaned state, reclaimed by soft-state expiry. The source times out
      // and retransmits (against capacity its own orphan now consumes).
      ++stats_.resv_orphans;
      add_orphan(route, bandwidth);
      wait_timeout(send);
      continue;
    }
    result.admitted = true;
    result.messages = charged;
    pending_wait_s_ += plane_.delay_injected_s() - delay_before;
    return result;
  }
  ++stats_.give_ups;
  if (recovery_hook_ != nullptr) {
    std::string detail = "dst=";
    detail += std::to_string(route.destination);
    detail += " hops=";
    detail += std::to_string(route.links.size());
    detail += " retransmits=";
    detail += std::to_string(result.retransmits);
    recovery_hook_(simulator_->now(), "retransmit_exhaustion", detail);
  }
  result.messages = charged;
  pending_wait_s_ += plane_.delay_injected_s() - delay_before;
  return result;
}

void ResilientReservationProtocol::teardown(const net::Path& route, net::Bandwidth bandwidth) {
  // TEAR travels downstream; RSVP teardown is unacknowledged, so a lost TEAR
  // is never retransmitted — the leaked reservation waits for soft-state
  // expiry (or for the InvariantAuditor-driven reclaim_pending()).
  std::uint64_t hops = 0;
  bool died = false;
  for (const net::LinkId id : route.links) {
    ++hops;
    if (plane_.traverse(id) != HopOutcome::kDelivered) {
      died = true;
      break;
    }
  }
  count_hops(MessageKind::kTear, hops);
  if (died) {
    ++stats_.tear_orphans;
    add_orphan(route, bandwidth);
    return;
  }
  ledger().release(route, bandwidth);
}

void ResilientReservationProtocol::add_orphan(const net::Path& route, net::Bandwidth bandwidth) {
  const std::uint64_t id = next_orphan_id_++;
  Orphan orphan;
  orphan.route = route;
  orphan.bandwidth = bandwidth;
  orphan.timer =
      simulator_->schedule_in(options_.orphan_hold_s, cat_orphan_,
                              [this, id] { reclaim_orphan(id, /*expired=*/true); });
  orphans_.emplace(id, std::move(orphan));
}

void ResilientReservationProtocol::reclaim_orphan(std::uint64_t id, bool expired) {
  const auto it = orphans_.find(id);
  util::ensure(it != orphans_.end(), "orphan reclaim fired for an unknown orphan");
  // Soft-state expiry is silent — routers drop the state locally, no TEAR.
  ledger().release(it->second.route, it->second.bandwidth);
  ++stats_.orphans_reclaimed;
  stats_.orphaned_bandwidth_reclaimed_bps += it->second.bandwidth;
  if (expired && recovery_hook_ != nullptr) {
    std::string detail = "dst=";
    detail += std::to_string(it->second.route.destination);
    detail += " hops=";
    detail += std::to_string(it->second.route.links.size());
    detail += " bw_bps=";
    detail += std::to_string(static_cast<std::uint64_t>(it->second.bandwidth));
    recovery_hook_(simulator_->now(), "orphan_expiry", detail);
  }
  orphans_.erase(it);
}

void ResilientReservationProtocol::on_link_failing(net::LinkId id) {
  // State crossing a dying link vanishes with the link; reclaim now so the
  // ledger's fail_link() precondition (nothing reserved) holds.
  std::vector<std::uint64_t> crossing;
  ANYQOS_DETLINT_ALLOW(unordered_artifact_iteration, "sorted-key extraction");
  for (const auto& [orphan_id, orphan] : orphans_) {
    if (std::find(orphan.route.links.begin(), orphan.route.links.end(), id) !=
        orphan.route.links.end()) {
      crossing.push_back(orphan_id);
    }
  }
  std::sort(crossing.begin(), crossing.end());  // deterministic order
  for (const std::uint64_t orphan_id : crossing) {
    simulator_->cancel(orphans_.at(orphan_id).timer);
    reclaim_orphan(orphan_id, /*expired=*/false);
  }
}

double ResilientReservationProtocol::consume_pending_wait() {
  const double wait = pending_wait_s_;
  pending_wait_s_ = 0.0;
  return wait;
}

net::Bandwidth ResilientReservationProtocol::orphaned_bandwidth_bps() const {
  net::Bandwidth total = 0.0;
  ANYQOS_DETLINT_ALLOW(unordered_artifact_iteration, "order-insensitive sum");
  for (const auto& [id, orphan] : orphans_) {
    total += orphan.bandwidth;
  }
  return total;
}

std::size_t ResilientReservationProtocol::reclaim_pending() {
  std::vector<std::uint64_t> ids;
  ids.reserve(orphans_.size());
  ANYQOS_DETLINT_ALLOW(unordered_artifact_iteration, "sorted-key extraction");
  for (const auto& [id, orphan] : orphans_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const std::uint64_t id : ids) {
    simulator_->cancel(orphans_.at(id).timer);
    reclaim_orphan(id, /*expired=*/false);
  }
  return ids.size();
}

ResilienceStats ResilientReservationProtocol::stats() const {
  ResilienceStats stats = stats_;
  stats.messages_lost = plane_.messages_lost();
  stats.messages_killed_by_outage = plane_.messages_killed_by_outage();
  return stats;
}

}  // namespace anyqos::signaling
