#include "src/signaling/message.h"

#include "src/util/require.h"

namespace anyqos::signaling {

std::string to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPath:
      return "PATH";
    case MessageKind::kResv:
      return "RESV";
    case MessageKind::kPathErr:
      return "PATH_ERR";
    case MessageKind::kTear:
      return "TEAR";
    case MessageKind::kProbe:
      return "PROBE";
    case MessageKind::kProbeReply:
      return "PROBE_REPLY";
  }
  util::unreachable("MessageKind");
}

void MessageCounter::count(MessageKind kind, std::uint64_t hops) {
  counts_[static_cast<std::size_t>(kind)] += hops;
}

std::uint64_t MessageCounter::total() const {
  std::uint64_t sum = 0;
  for (const std::uint64_t c : counts_) {
    sum += c;
  }
  return sum;
}

std::uint64_t MessageCounter::by_kind(MessageKind kind) const {
  return counts_[static_cast<std::size_t>(kind)];
}

std::uint64_t MessageCounter::setup_total() const {
  return total() - by_kind(MessageKind::kTear);
}

void MessageCounter::reset() { counts_.fill(0); }

void MessageCounter::merge(const MessageCounter& other) {
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
}

}  // namespace anyqos::signaling
