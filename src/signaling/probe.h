// Route-bandwidth probing — the "extended RSVP" the paper says WD/D+B needs.
//
// Section 4.3.2: "To obtain this kind of information, we have to extend some
// of current signaling protocols... let RESV message carry this kind of
// information back to AC-routers." We model it as an explicit PROBE /
// PROBE_REPLY exchange per route so its cost shows up in the overhead
// accounting — this is exactly the compatibility cost the paper warns about.
#pragma once

#include "src/net/bandwidth.h"
#include "src/signaling/message.h"

namespace anyqos::signaling {

/// Returns the bottleneck available bandwidth of routes, charging signaling
/// messages for each query.
class ProbeService {
 public:
  /// Both references must outlive the service.
  ProbeService(const net::BandwidthLedger& ledger, MessageCounter& counter);

  /// Bottleneck available bandwidth of `route` (B_i, eq. (11)).
  /// Charges one PROBE per link downstream and one PROBE_REPLY per link back.
  [[nodiscard]] net::Bandwidth route_bandwidth(const net::Path& route);

 private:
  const net::BandwidthLedger* ledger_;
  MessageCounter* counter_;
};

}  // namespace anyqos::signaling
