// RSVP soft state: periodic refresh, loss tolerance, and expiry.
//
// The paper reserves resources "by the standard RSVP protocol"; standard
// RSVP state is *soft* — it persists only while PATH/RESV refreshes keep
// arriving, and evaporates K missed refreshes later. The two-pass walk in
// rsvp.h models admission; this module models the lifetime side: each
// installed session refreshes every `refresh_interval_s` (charging PATH+RESV
// messages per refresh), refreshes may be lost with a configurable
// probability, and `lifetime_refreshes` consecutive losses expire the
// session, releasing its bandwidth and notifying the owner. This makes the
// refresh-overhead / state-robustness trade-off measurable.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/des/random.h"
#include "src/des/simulator.h"
#include "src/net/bandwidth.h"
#include "src/signaling/message.h"

namespace anyqos::signaling {

using SessionId = std::uint64_t;

/// Configuration of the soft-state machinery.
struct SoftStateOptions {
  double refresh_interval_s = 30.0;   ///< RSVP's R (default refresh period)
  std::size_t lifetime_refreshes = 3; ///< K: missed refreshes before expiry
  double refresh_loss_probability = 0.0;  ///< per-refresh loss (network loss model)
};

/// Manages refresh timers and expiry for installed reservations.
///
/// The manager does not perform admission — install() records an
/// already-reserved (route, bandwidth) pair, takes over its lifecycle, and
/// releases the bandwidth on expiry or explicit removal.
class SoftStateManager {
 public:
  using ExpiryCallback = std::function<void(SessionId)>;

  /// All references must outlive the manager. `rng` drives refresh loss.
  SoftStateManager(des::Simulator& simulator, net::BandwidthLedger& ledger,
                   MessageCounter& counter, des::RandomStream& rng,
                   SoftStateOptions options);

  /// Read-only view of one managed session, for monitoring and auditing.
  struct SessionView {
    SessionId id = 0;
    const net::Path* route = nullptr;
    net::Bandwidth bandwidth = 0.0;
    std::size_t missed = 0;  ///< consecutive refreshes lost so far
  };

  /// Starts managing a reservation previously installed on `ledger`.
  /// `on_expiry` (optional) fires if the session times out. Discarding the
  /// id strands the session (it can never be remove()d), hence [[nodiscard]].
  [[nodiscard]] SessionId install(net::Path route, net::Bandwidth bandwidth_bps,
                                  ExpiryCallback on_expiry = {});

  /// Gracefully removes a session (TEAR signaling, bandwidth released).
  /// Throws std::invalid_argument when the session is gone (e.g. expired).
  void remove(SessionId id);

  /// True while the session holds its reservation.
  [[nodiscard]] bool alive(SessionId id) const;

  /// Sessions currently alive.
  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  /// Sessions that timed out over the manager's lifetime.
  [[nodiscard]] std::uint64_t expired_count() const { return expired_; }

  /// Invokes `fn` once per live session in ascending id order (artifact
  /// paths depend on this determinism). `fn` must not install or remove
  /// sessions.
  void for_each_session(const std::function<void(const SessionView&)>& fn) const;

  /// The configuration this manager runs under.
  [[nodiscard]] const SoftStateOptions& options() const { return options_; }

 private:
  struct Session {
    net::Path route;
    net::Bandwidth bandwidth = 0.0;
    std::size_t missed = 0;
    des::EventHandle timer;
    ExpiryCallback on_expiry;
  };

  void schedule_refresh(SessionId id);
  void refresh(SessionId id);

  des::Simulator* simulator_;
  des::EventCategory cat_refresh_;  // "signaling.refresh" kernel tag
  net::BandwidthLedger* ledger_;
  MessageCounter* counter_;
  des::RandomStream* rng_;
  SoftStateOptions options_;
  std::unordered_map<SessionId, Session> sessions_;
  SessionId next_id_ = 1;
  std::uint64_t expired_ = 0;
};

}  // namespace anyqos::signaling
