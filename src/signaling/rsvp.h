// RSVP-like hop-by-hop resource reservation (paper Section 4.4).
//
// Reservation performs the paper's two tasks: (1) check that every link of
// the fixed route has enough available bandwidth; (2) reserve it on every
// link. We simulate the protocol walk — a PATH message travels downstream
// checking admission hop by hop, then a RESV message travels upstream
// installing the reservation — and account the control messages each phase
// generates. Because the simulation kernel is sequential, the two phases are
// atomic with respect to other requests, which matches RSVP's behaviour of
// admitting at most the advertised capacity.
#pragma once

#include <limits>
#include <optional>

#include "src/net/bandwidth.h"
#include "src/signaling/message.h"

namespace anyqos::signaling {

/// Outcome of one reservation attempt.
struct ReservationResult {
  bool admitted = false;
  /// Link where admission failed (set iff !admitted and the route is
  /// non-empty); the first bottleneck encountered downstream.
  std::optional<net::LinkId> blocking_link;
  /// Control messages (link traversals) this attempt generated.
  std::uint64_t messages = 0;
  /// PATH retransmissions this attempt needed (always 0 for the lossless
  /// base protocol; the resilient protocol counts every timeout-driven
  /// re-send so decision spans expose retry storms).
  std::uint64_t retransmits = 0;
  /// Minimum available bandwidth the PATH walk observed over the links it
  /// inspected, pre-reservation (the paper's route bandwidth B_i over the
  /// traversed prefix). Infinite for 0-hop routes. Diagnostic: decision
  /// spans record it so per-attempt bottlenecks are visible in traces.
  net::Bandwidth bottleneck_bps = std::numeric_limits<net::Bandwidth>::infinity();
};

/// Executes reservations and teardowns against a BandwidthLedger, tallying
/// signaling messages into a MessageCounter.
///
/// The base class is the paper's fault-free instantaneous walk; reserve()
/// and teardown() are virtual so a failure-aware variant (see resilient.h)
/// can slot into AdmissionController and Simulation unchanged.
class ReservationProtocol {
 public:
  /// Both references must outlive the protocol object.
  ReservationProtocol(net::BandwidthLedger& ledger, MessageCounter& counter);
  virtual ~ReservationProtocol() = default;

  ReservationProtocol(const ReservationProtocol&) = delete;
  ReservationProtocol& operator=(const ReservationProtocol&) = delete;

  /// Attempts to reserve `bandwidth` along `route`.
  ///
  /// Message accounting: the PATH message travels until it is blocked (k
  /// links) or reaches the destination (hops links); on success the RESV
  /// message travels the full route back (hops links); on failure a PATH_ERR
  /// travels back over the k links already traversed.
  /// Discarding the result loses the only record that bandwidth was
  /// committed, hence [[nodiscard]].
  [[nodiscard]] virtual ReservationResult reserve(const net::Path& route,
                                                  net::Bandwidth bandwidth);

  /// Releases a reservation installed by a successful reserve() with the
  /// same route and bandwidth; one TEAR message traverses the route.
  /// A failure-aware protocol may lose the TEAR and defer the release to
  /// soft-state reclamation, so the ledger is not guaranteed to reflect the
  /// release on return — use force_teardown() where it must.
  virtual void teardown(const net::Path& route, net::Bandwidth bandwidth);

  /// Unconditional, immediate teardown: the release always commits before
  /// returning (TEAR signaling counted). Used when the network itself
  /// invalidates the reservation — e.g. a link on the route failed and the
  /// ledger requires the link idle before taking it out of service.
  void force_teardown(const net::Path& route, net::Bandwidth bandwidth);

  /// Shrinks an installed reservation down to the sub-path `to` (see
  /// BandwidthLedger::narrow); each dropped link sees one TEAR traversal.
  /// Immediate like force_teardown() — used when the network invalidates
  /// part of a route and the surviving remnant must stay reserved while the
  /// flow waits for path repair.
  void narrow(const net::Path& from, const net::Path& to, net::Bandwidth bandwidth);

  /// Hook invoked by the simulation just before directed link `id` is taken
  /// out of service, while reservations on it are still releasable. The
  /// resilient protocol reclaims orphaned state crossing the link here.
  virtual void on_link_failing(net::LinkId /*id*/) {}

  /// Simulated seconds of control-plane waiting (timeout + backoff) accrued
  /// since the last call; the base protocol never waits. The simulation
  /// drains this after every decision into its setup-delay statistics.
  [[nodiscard]] virtual double consume_pending_wait() { return 0.0; }

  [[nodiscard]] const MessageCounter& counter() const { return *counter_; }

 protected:
  [[nodiscard]] net::BandwidthLedger& ledger() { return *ledger_; }
  [[nodiscard]] MessageCounter& message_counter() { return *counter_; }

  /// Single funnel for charging hop traversals to the MessageCounter. Every
  /// walk — including the non-virtual force_teardown() — charges through it,
  /// so a derived protocol that mirrors its own contribution (the resilient
  /// protocol's hops_counted reconciliation tally) overrides this once
  /// instead of shadowing each walk.
  virtual void count_hops(MessageKind kind, std::uint64_t hops);

 private:
  net::BandwidthLedger* ledger_;
  MessageCounter* counter_;
};

}  // namespace anyqos::signaling
