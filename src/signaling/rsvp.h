// RSVP-like hop-by-hop resource reservation (paper Section 4.4).
//
// Reservation performs the paper's two tasks: (1) check that every link of
// the fixed route has enough available bandwidth; (2) reserve it on every
// link. We simulate the protocol walk — a PATH message travels downstream
// checking admission hop by hop, then a RESV message travels upstream
// installing the reservation — and account the control messages each phase
// generates. Because the simulation kernel is sequential, the two phases are
// atomic with respect to other requests, which matches RSVP's behaviour of
// admitting at most the advertised capacity.
#pragma once

#include <limits>
#include <optional>

#include "src/net/bandwidth.h"
#include "src/signaling/message.h"

namespace anyqos::signaling {

/// Outcome of one reservation attempt.
struct ReservationResult {
  bool admitted = false;
  /// Link where admission failed (set iff !admitted and the route is
  /// non-empty); the first bottleneck encountered downstream.
  std::optional<net::LinkId> blocking_link;
  /// Control messages (link traversals) this attempt generated.
  std::uint64_t messages = 0;
  /// Minimum available bandwidth the PATH walk observed over the links it
  /// inspected, pre-reservation (the paper's route bandwidth B_i over the
  /// traversed prefix). Infinite for 0-hop routes. Diagnostic: decision
  /// spans record it so per-attempt bottlenecks are visible in traces.
  net::Bandwidth bottleneck_bps = std::numeric_limits<net::Bandwidth>::infinity();
};

/// Executes reservations and teardowns against a BandwidthLedger, tallying
/// signaling messages into a MessageCounter.
class ReservationProtocol {
 public:
  /// Both references must outlive the protocol object.
  ReservationProtocol(net::BandwidthLedger& ledger, MessageCounter& counter);

  /// Attempts to reserve `bandwidth` along `route`.
  ///
  /// Message accounting: the PATH message travels until it is blocked (k
  /// links) or reaches the destination (hops links); on success the RESV
  /// message travels the full route back (hops links); on failure a PATH_ERR
  /// travels back over the k links already traversed.
  /// Discarding the result loses the only record that bandwidth was
  /// committed, hence [[nodiscard]].
  [[nodiscard]] ReservationResult reserve(const net::Path& route, net::Bandwidth bandwidth);

  /// Releases a reservation installed by a successful reserve() with the
  /// same route and bandwidth; one TEAR message traverses the route.
  void teardown(const net::Path& route, net::Bandwidth bandwidth);

  [[nodiscard]] const MessageCounter& counter() const { return *counter_; }

 private:
  net::BandwidthLedger* ledger_;
  MessageCounter* counter_;
};

}  // namespace anyqos::signaling
