#include "src/signaling/rsvp.h"

#include <algorithm>

#include "src/util/require.h"

namespace anyqos::signaling {

ReservationProtocol::ReservationProtocol(net::BandwidthLedger& ledger, MessageCounter& counter)
    : ledger_(&ledger), counter_(&counter) {}

ReservationResult ReservationProtocol::reserve(const net::Path& route, net::Bandwidth bandwidth) {
  util::require(bandwidth > 0.0, "reservation bandwidth must be positive");
  ReservationResult result;
  // Downstream PATH walk: find the first link that cannot admit the flow.
  std::uint64_t traversed = 0;
  for (const net::LinkId id : route.links) {
    ++traversed;  // the PATH message crosses this link (or dies at its head)
    result.bottleneck_bps = std::min(result.bottleneck_bps, ledger_->available(id));
    if (ledger_->available(id) < bandwidth) {
      result.blocking_link = id;
      break;
    }
  }
  count_hops(MessageKind::kPath, traversed);
  if (result.blocking_link.has_value()) {
    // PATH_ERR unwinds to the source over the links already traversed.
    count_hops(MessageKind::kPathErr, traversed);
    result.messages = 2 * traversed;
    return result;
  }
  // Upstream RESV walk installs the reservation. The ledger reserve is
  // atomic; in this sequential simulation no interleaving request can have
  // consumed the bandwidth between the PATH check and here.
  const bool ok = ledger_->reserve(route, bandwidth);
  util::ensure(ok, "RESV failed after PATH admitted every hop");
  count_hops(MessageKind::kResv, route.hops());
  result.admitted = true;
  result.messages = 2 * route.hops();
  return result;
}

void ReservationProtocol::teardown(const net::Path& route, net::Bandwidth bandwidth) {
  force_teardown(route, bandwidth);
}

void ReservationProtocol::force_teardown(const net::Path& route, net::Bandwidth bandwidth) {
  ledger_->release(route, bandwidth);
  count_hops(MessageKind::kTear, route.hops());
}

void ReservationProtocol::narrow(const net::Path& from, const net::Path& to,
                                 net::Bandwidth bandwidth) {
  util::require(from.hops() >= to.hops(), "narrow cannot grow a reservation");
  ledger_->narrow(from, to, bandwidth);
  count_hops(MessageKind::kTear, from.hops() - to.hops());
}

void ReservationProtocol::count_hops(MessageKind kind, std::uint64_t hops) {
  counter_->count(kind, hops);
}

}  // namespace anyqos::signaling
