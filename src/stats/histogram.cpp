#include "src/stats/histogram.h"

#include <cmath>
#include <sstream>

#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::stats {

void CountHistogram::add(std::size_t value) {
  if (value >= bins_.size()) {
    bins_.resize(value + 1, 0);
  }
  ++bins_[value];
  ++total_;
  sum_ += static_cast<double>(value);
}

std::size_t CountHistogram::count(std::size_t value) const {
  return value < bins_.size() ? bins_[value] : 0;
}

std::size_t CountHistogram::max_value() const {
  for (std::size_t i = bins_.size(); i > 0; --i) {
    if (bins_[i - 1] != 0) {
      return i - 1;
    }
  }
  return 0;
}

double CountHistogram::mean() const {
  return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_);
}

double CountHistogram::fraction(std::size_t value) const {
  return total_ == 0 ? 0.0 : static_cast<double>(count(value)) / static_cast<double>(total_);
}

std::string CountHistogram::to_string() const {
  std::ostringstream out;
  for (std::size_t v = 0; v < bins_.size(); ++v) {
    if (bins_[v] == 0) {
      continue;
    }
    out << v << ": " << bins_[v] << " (" << util::format_fixed(100.0 * fraction(v), 2) << "%)\n";
  }
  return out.str();
}

RangeHistogram::RangeHistogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
  util::require(hi > lo, "histogram range must be non-empty");
  util::require(bins >= 1, "histogram needs at least one bin");
  counts_.assign(bins, 0);
}

void RangeHistogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    ++counts_.front();
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    ++counts_.back();
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((value - lo_) / width);
  if (bin >= counts_.size()) {  // guards FP edge at value ~= hi
    bin = counts_.size() - 1;
  }
  ++counts_[bin];
}

std::size_t RangeHistogram::bin_count(std::size_t bin) const {
  util::require(bin < counts_.size(), "histogram bin out of range");
  return counts_[bin];
}

double RangeHistogram::bin_lower(std::size_t bin) const {
  util::require(bin < counts_.size(), "histogram bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

}  // namespace anyqos::stats
