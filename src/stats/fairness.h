// Allocation fairness metrics.
#pragma once

#include <cstdint>
#include <span>

namespace anyqos::stats {

/// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1].
/// 1 = perfectly even allocation, 1/n = everything on one member. Used to
/// summarize how admission spreads flows across anycast group members.
/// Values must be non-negative; an all-zero vector yields 1 (vacuously fair).
double jain_index(std::span<const double> values);

/// Convenience overload for integer tallies (e.g. per-member admissions).
double jain_index(std::span<const std::uint64_t> values);

}  // namespace anyqos::stats
