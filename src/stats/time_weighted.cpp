#include "src/stats/time_weighted.h"

#include <algorithm>

#include "src/util/require.h"

namespace anyqos::stats {

void TimeWeighted::update(double time, double value) {
  if (!started_) {
    started_ = true;
    start_time_ = time;
    last_time_ = time;
    value_ = value;
    max_ = value;
    return;
  }
  util::require(time >= last_time_, "time-weighted updates must be non-decreasing in time");
  integral_ += value_ * (time - last_time_);
  last_time_ = time;
  value_ = value;
  max_ = std::max(max_, value);
}

double TimeWeighted::mean(double now) const {
  if (!started_ || now <= start_time_) {
    return 0.0;
  }
  util::require(now >= last_time_, "query time precedes last update");
  const double total = integral_ + value_ * (now - last_time_);
  return total / (now - start_time_);
}

void TimeWeighted::restart(double time) {
  const double value = value_;
  const bool started = started_;
  *this = TimeWeighted{};
  if (started) {
    update(time, value);
  }
}

}  // namespace anyqos::stats
