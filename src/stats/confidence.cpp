#include "src/stats/confidence.h"

#include <array>
#include <cmath>

#include "src/util/require.h"

namespace anyqos::stats {

bool ConfidenceInterval::contains(double value) const {
  return value >= lower() && value <= upper();
}

namespace {

// Acklam's rational approximation to the standard normal inverse CDF.
double normal_quantile(double p) {
  util::require(p > 0.0 && p < 1.0, "normal quantile requires p in (0,1)");
  static constexpr std::array<double, 6> a = {-3.969683028665376e+01, 2.209460984245205e+02,
                                              -2.759285104469687e+02, 1.383577518672690e+02,
                                              -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr std::array<double, 5> b = {-5.447609879822406e+01, 1.615858368580409e+02,
                                              -1.556989798598866e+02, 6.680131188771972e+01,
                                              -1.328068155288572e+01};
  static constexpr std::array<double, 6> c = {-7.784894002430293e-03, -3.223964580411365e-01,
                                              -2.400758277161838e+00, -2.549732539343734e+00,
                                              4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr std::array<double, 4> d = {7.784695709041462e-03, 3.224671290700398e-01,
                                              2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double normal_critical(double level) {
  util::require(level > 0.0 && level < 1.0, "confidence level must be in (0,1)");
  return normal_quantile(0.5 * (1.0 + level));
}

double student_t_critical(std::size_t dof, double level) {
  util::require(dof >= 1, "t critical value requires dof >= 1");
  const double z = normal_critical(level);
  // Exact two-sided 95% values for small dof; used when the caller asks for
  // the customary 0.95 level where table accuracy matters most.
  static constexpr std::array<double, 30> t95 = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (level > 0.9499 && level < 0.9501 && dof <= t95.size()) {
    return t95[dof - 1];
  }
  // Peiser's expansion of t in terms of the normal quantile. Good to ~1e-3
  // for dof >= 3 at common confidence levels.
  const double n = static_cast<double>(dof);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  return z + (z3 + z) / (4.0 * n) + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * n * n) +
         (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * n * n * n);
}

ConfidenceInterval mean_confidence(const Accumulator& acc, double level) {
  ConfidenceInterval ci;
  ci.mean = acc.mean();
  if (acc.count() < 2) {
    return ci;
  }
  const double se = acc.stddev() / std::sqrt(static_cast<double>(acc.count()));
  ci.half_width = student_t_critical(acc.count() - 1, level) * se;
  return ci;
}

ConfidenceInterval proportion_confidence(const ProportionAccumulator& acc, double level) {
  ConfidenceInterval ci;
  ci.mean = acc.proportion();
  if (acc.trials() < 2) {
    return ci;
  }
  ci.half_width = normal_critical(level) * acc.standard_error();
  return ci;
}

BatchMeans::BatchMeans(std::size_t batches) : batches_(batches) {
  util::require(batches >= 2, "batch means requires at least 2 batches");
}

void BatchMeans::add(double value) { values_.push_back(value); }

bool BatchMeans::ready() const { return values_.size() >= batches_; }

double BatchMeans::mean() const {
  Accumulator acc;
  for (const double v : values_) {
    acc.add(v);
  }
  return acc.mean();
}

ConfidenceInterval BatchMeans::confidence(double level) const {
  util::require(ready(), "batch means needs at least one sample per batch");
  const std::size_t batch_len = values_.size() / batches_;
  Accumulator batch_means;
  for (std::size_t b = 0; b < batches_; ++b) {
    Accumulator batch;
    for (std::size_t i = b * batch_len; i < (b + 1) * batch_len; ++i) {
      batch.add(values_[i]);
    }
    batch_means.add(batch.mean());
  }
  return mean_confidence(batch_means, level);
}

}  // namespace anyqos::stats
