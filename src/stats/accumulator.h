// Streaming moment accumulators (Welford's algorithm).
#pragma once

#include <cstddef>
#include <limits>

namespace anyqos::stats {

/// Numerically stable streaming mean/variance/min/max accumulator.
///
/// Uses Welford's online algorithm, so adding millions of samples keeps full
/// double precision for the variance. All queries are O(1).
class Accumulator {
 public:
  /// Adds one observation.
  void add(double value);

  /// Merges another accumulator into this one (parallel-friendly; Chan et al.).
  void merge(const Accumulator& other);

  /// Number of observations added.
  [[nodiscard]] std::size_t count() const { return count_; }
  /// Arithmetic mean; 0 when empty.
  [[nodiscard]] double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  /// sqrt(variance()).
  [[nodiscard]] double stddev() const;
  /// Sum of all observations.
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(count_); }
  /// Smallest observation; +inf when empty.
  [[nodiscard]] double min() const { return min_; }
  /// Largest observation; -inf when empty.
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Resets to the freshly constructed state.
  void reset();

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Streaming ratio estimator for Bernoulli outcomes (e.g. admitted / offered).
///
/// Thin wrapper that keeps success and trial counts and exposes the sample
/// proportion plus the Wald standard error used by confidence interval code.
class ProportionAccumulator {
 public:
  /// Records one trial with the given outcome.
  void add(bool success);

  [[nodiscard]] std::size_t trials() const { return trials_; }
  [[nodiscard]] std::size_t successes() const { return successes_; }
  /// Sample proportion; 0 when no trials recorded.
  [[nodiscard]] double proportion() const;
  /// Wald standard error sqrt(p(1-p)/n); 0 when fewer than 2 trials.
  [[nodiscard]] double standard_error() const;

  void reset();

 private:
  std::size_t trials_ = 0;
  std::size_t successes_ = 0;
};

}  // namespace anyqos::stats
