// Time-weighted statistics for piecewise-constant processes
// (e.g. number of active flows, reserved bandwidth on a link).
#pragma once

namespace anyqos::stats {

/// Tracks the time-average of a piecewise-constant signal.
///
/// Call `update(t, v)` whenever the signal changes to value `v` at time `t`;
/// the value is held until the next update. `mean(t)` integrates up to `t`.
/// Times must be non-decreasing.
class TimeWeighted {
 public:
  /// Records that the signal takes value `value` from time `time` onward.
  void update(double time, double value);

  /// Time average over [first update, `now`]; 0 before any update.
  [[nodiscard]] double mean(double now) const;
  /// Largest value the signal has taken; 0 before any update.
  [[nodiscard]] double max() const { return max_; }
  /// Current value of the signal.
  [[nodiscard]] double current() const { return value_; }
  [[nodiscard]] bool started() const { return started_; }

  /// Forgets history but keeps the current value, restarting the
  /// integration window at `time` (used to discard simulation warm-up).
  void restart(double time);

 private:
  bool started_ = false;
  double start_time_ = 0.0;
  double last_time_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;
  double max_ = 0.0;
};

}  // namespace anyqos::stats
