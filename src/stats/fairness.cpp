#include "src/stats/fairness.h"

#include <vector>

#include "src/util/require.h"

namespace anyqos::stats {

double jain_index(std::span<const double> values) {
  util::require(!values.empty(), "fairness of an empty allocation");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : values) {
    util::require(x >= 0.0, "allocations must be non-negative");
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) {
    return 1.0;  // nothing allocated anywhere: vacuously fair
  }
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

double jain_index(std::span<const std::uint64_t> values) {
  std::vector<double> as_double(values.begin(), values.end());
  return jain_index(as_double);
}

}  // namespace anyqos::stats
