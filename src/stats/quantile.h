// Streaming quantile estimation (P-square algorithm, Jain & Chlamtac 1985).
//
// Tracks a single quantile of a stream in O(1) memory — used for tail
// statistics of per-request signaling cost and agency decision delay, where
// storing every sample across millions of requests would be wasteful.
#pragma once

#include <array>
#include <cstddef>

namespace anyqos::stats {

/// P² estimator for one quantile p in (0, 1).
///
/// The first five observations are stored exactly; afterwards five markers
/// track (min, p/2, p, (1+p)/2, max) positions with parabolic adjustment.
/// Typical accuracy is within a few percent of the exact quantile for
/// unimodal distributions at n >= 100.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile);

  /// Adds one observation.
  void add(double value);

  /// Current estimate. Requires at least one observation; with fewer than
  /// five it is the exact sample quantile (nearest-rank).
  [[nodiscard]] double value() const;

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double quantile() const { return quantile_; }

 private:
  void initialize();

  double quantile_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};       // marker heights q_i
  std::array<double, 5> positions_{};     // actual positions n_i
  std::array<double, 5> desired_{};       // desired positions n'_i
  std::array<double, 5> increments_{};    // dn'_i
  bool initialized_ = false;
};

}  // namespace anyqos::stats
