#include "src/stats/accumulator.h"

#include <algorithm>
#include <cmath>

namespace anyqos::stats {

void Accumulator::add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  const double delta2 = value - mean_;
  m2_ += delta * delta2;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Accumulator::merge(const Accumulator& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::reset() { *this = Accumulator{}; }

void ProportionAccumulator::add(bool success) {
  ++trials_;
  if (success) {
    ++successes_;
  }
}

double ProportionAccumulator::proportion() const {
  return trials_ == 0 ? 0.0 : static_cast<double>(successes_) / static_cast<double>(trials_);
}

double ProportionAccumulator::standard_error() const {
  if (trials_ < 2) {
    return 0.0;
  }
  const double p = proportion();
  return std::sqrt(p * (1.0 - p) / static_cast<double>(trials_));
}

void ProportionAccumulator::reset() { *this = ProportionAccumulator{}; }

}  // namespace anyqos::stats
