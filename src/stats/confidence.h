// Confidence intervals for simulation output analysis.
#pragma once

#include <cstddef>
#include <vector>

#include "src/stats/accumulator.h"

namespace anyqos::stats {

/// A symmetric confidence interval [mean - half_width, mean + half_width].
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;

  [[nodiscard]] double lower() const { return mean - half_width; }
  [[nodiscard]] double upper() const { return mean + half_width; }
  /// True when `value` lies inside the interval (inclusive).
  [[nodiscard]] bool contains(double value) const;
};

/// Two-sided critical value of Student's t distribution with `dof` degrees of
/// freedom at confidence `level` (e.g. 0.95). Uses tabulated values for small
/// dof and the normal approximation with a Cornish-Fisher-style correction
/// above; accurate to ~1e-3 which is ample for reporting simulation CIs.
double student_t_critical(std::size_t dof, double level);

/// Standard normal two-sided critical value (inverse CDF of (1+level)/2),
/// via the Acklam rational approximation (|error| < 1.2e-8).
double normal_critical(double level);

/// CI for the mean of i.i.d.-ish samples in `acc` at confidence `level`.
ConfidenceInterval mean_confidence(const Accumulator& acc, double level);

/// Wald CI for a Bernoulli proportion at confidence `level`.
ConfidenceInterval proportion_confidence(const ProportionAccumulator& acc, double level);

/// Batch-means estimator for autocorrelated simulation output.
///
/// Observations are buffered; `confidence` splits them into `batches`
/// contiguous, equal-length batches (discarding up to batches-1 trailing
/// samples) and builds a Student-t CI from the batch means. Contiguity is what
/// makes the batch means approximately independent for a stationary series.
class BatchMeans {
 public:
  /// `batches` must be >= 2; 10..30 is customary.
  explicit BatchMeans(std::size_t batches);

  /// Adds one (possibly autocorrelated) observation.
  void add(double value);

  /// True once there is at least one full observation per batch.
  [[nodiscard]] bool ready() const;
  [[nodiscard]] std::size_t count() const { return values_.size(); }
  /// Overall mean of all observations.
  [[nodiscard]] double mean() const;
  /// CI of the batch means at confidence `level`; requires ready().
  [[nodiscard]] ConfidenceInterval confidence(double level) const;

 private:
  std::size_t batches_;
  std::vector<double> values_;
};

}  // namespace anyqos::stats
