#include "src/stats/quantile.h"

#include <algorithm>
#include <cmath>

#include "src/util/require.h"

namespace anyqos::stats {

P2Quantile::P2Quantile(double quantile) : quantile_(quantile) {
  util::require(quantile > 0.0 && quantile < 1.0, "quantile must be in (0,1)");
}

void P2Quantile::initialize() {
  // First five samples live in heights_ (kept sorted by add()).
  positions_ = {1.0, 2.0, 3.0, 4.0, 5.0};
  desired_ = {1.0, 1.0 + 2.0 * quantile_, 1.0 + 4.0 * quantile_, 3.0 + 2.0 * quantile_, 5.0};
  increments_ = {0.0, quantile_ / 2.0, quantile_, (1.0 + quantile_) / 2.0, 1.0};
  initialized_ = true;
}

void P2Quantile::add(double value) {
  util::require(std::isfinite(value), "observations must be finite");
  if (count_ < 5) {
    heights_[count_] = value;
    ++count_;
    std::sort(heights_.begin(), heights_.begin() + static_cast<std::ptrdiff_t>(count_));
    if (count_ == 5) {
      initialize();
    }
    return;
  }
  ++count_;

  // Locate the cell k containing the new observation; clamp extremes.
  std::size_t k;
  if (value < heights_[0]) {
    heights_[0] = value;
    k = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && value >= heights_[k + 1]) {
      ++k;
    }
  }
  for (std::size_t i = k + 1; i < 5; ++i) {
    positions_[i] += 1.0;
  }
  for (std::size_t i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }

  // Adjust interior markers toward their desired positions.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double offset = desired_[i] - positions_[i];
    const bool move_right = offset >= 1.0 && positions_[i + 1] - positions_[i] > 1.0;
    const bool move_left = offset <= -1.0 && positions_[i - 1] - positions_[i] < -1.0;
    if (!move_right && !move_left) {
      continue;
    }
    const double d = move_right ? 1.0 : -1.0;
    // Piecewise-parabolic (P²) prediction of the marker height.
    const double np = positions_[i + 1];
    const double nm = positions_[i - 1];
    const double n = positions_[i];
    const double qp = heights_[i + 1];
    const double qm = heights_[i - 1];
    const double q = heights_[i];
    double candidate = q + d / (np - nm) *
                               ((n - nm + d) * (qp - q) / (np - n) +
                                (np - n - d) * (q - qm) / (n - nm));
    if (candidate <= qm || candidate >= qp) {
      // Parabolic step would break monotonicity; use the linear fallback.
      const double neighbour = d > 0.0 ? qp : qm;
      const double neighbour_pos = d > 0.0 ? np : nm;
      candidate = q + d * (neighbour - q) / (neighbour_pos - n);
    }
    heights_[i] = candidate;
    positions_[i] += d;
  }
}

double P2Quantile::value() const {
  util::require(count_ >= 1, "quantile of an empty stream");
  if (count_ < 5) {
    // Nearest-rank on the exact stored samples.
    const auto rank = static_cast<std::size_t>(
        std::ceil(quantile_ * static_cast<double>(count_)));
    return heights_[std::min(count_ - 1, std::max<std::size_t>(rank, 1) - 1)];
  }
  return heights_[2];
}

}  // namespace anyqos::stats
