// Fixed-bin and integer-count histograms for retrial/overhead metrics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace anyqos::stats {

/// Histogram over small non-negative integers (e.g. number of tries per
/// flow request, 0..R). Out-of-range values extend the support automatically.
class CountHistogram {
 public:
  /// Records one observation of `value`.
  void add(std::size_t value);

  /// Number of observations equal to `value`.
  [[nodiscard]] std::size_t count(std::size_t value) const;
  /// Total observations recorded.
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Largest value observed (0 when empty).
  [[nodiscard]] std::size_t max_value() const;
  /// Mean of the recorded values.
  [[nodiscard]] double mean() const;
  /// Fraction of observations equal to `value`.
  [[nodiscard]] double fraction(std::size_t value) const;

  /// One line per non-empty bin: "value: count (fraction%)".
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::size_t> bins_;
  std::size_t total_ = 0;
  double sum_ = 0.0;
};

/// Equal-width histogram over a fixed [lo, hi) range with `bins` buckets.
/// Observations outside the range are clamped into the first/last bucket and
/// counted in underflow()/overflow() so no data is silently lost.
class RangeHistogram {
 public:
  RangeHistogram(double lo, double hi, std::size_t bins);

  void add(double value);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  /// Inclusive lower edge of `bin`.
  [[nodiscard]] double bin_lower(std::size_t bin) const;
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace anyqos::stats
