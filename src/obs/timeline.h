// Windowed time-series telemetry (observability layer 4).
//
// The registry (layer 1) answers "what happened over the whole run"; the
// Timeline answers "when". A self-rescheduling sample event on the DES
// kernel reads registered probes every `interval_s` simulated seconds and
// records one row per window: point samples for gauges, per-window rates
// for cumulative counters, and within-window peaks for watermarks that the
// hot path feeds between samples. This is the lens anycast load-management
// evaluations reason with — utilization and admission rate as functions of
// time, not end-of-run averages — so fault transients and re-convergence
// become visible instead of being averaged away.
//
// Warm-up handling: mark_measurement_start() stamps the boundary, flags
// earlier samples as warm-up, and re-baselines every counter column so a
// counter reset at the boundary (the simulation resets its MessageCounter
// there) cannot produce a negative rate.
//
// Cost discipline: like the no-sink span path, an unattached Timeline costs
// nothing — the simulation checks its config pointer before wiring any
// probe or noting any watermark, and note() itself is a bounds-checked
// max() on a plain double.
//
// Determinism contract: sampling runs in virtual time and probes read only
// model state, so two runs with the same seed and config produce
// byte-identical write_jsonl()/write_csv() artifacts (numbers are rendered
// with round-trip precision, never from wall time).
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/des/category.h"

namespace anyqos::des {
class Simulator;
}  // namespace anyqos::des

namespace anyqos::obs {

/// Tuning knobs for the sampler.
struct TimelineOptions {
  /// Simulated seconds between samples; must be positive.
  double interval_s = 50.0;
};

/// How a column turns probe readings into per-window values.
enum class TimelineColumnKind : std::uint8_t {
  kGauge,      ///< point sample of the probe at the window end
  kRate,       ///< (cumulative probe delta) / window length, per second
  kWatermark,  ///< max of note()d values and the probe over the window
};

std::string to_string(TimelineColumnKind kind);

/// One recorded row: every column evaluated at the same instant.
struct TimelineSample {
  double time = 0.0;      ///< virtual clock at the sample
  double window_s = 0.0;  ///< length of the window this row covers
  bool warmup = false;    ///< taken before mark_measurement_start()
  std::vector<double> values;  ///< aligned with Timeline::columns()
};

/// Windowed sampler; see the file comment for the full contract. One
/// instance records one run — construct fresh per simulation.
class Timeline {
 public:
  using Probe = std::function<double()>;
  /// Index into columns() and values; returned by the add_* registrars.
  using ColumnId = std::size_t;

  explicit Timeline(TimelineOptions options = {});

  // --- Registration (before attach()) ---
  /// Point-sampled column; `probe` is read once per window.
  ColumnId add_gauge(std::string name, Probe probe);
  /// Cumulative-counter column; the recorded value is the probe's
  /// per-window delta divided by the window length (a rate per second).
  /// Negative deltas clamp to zero (a counter reset between re-baselines).
  ColumnId add_counter(std::string name, Probe probe);
  /// Peak-tracking column: the recorded value is the maximum of every
  /// note() since the previous sample and the probe at the window end, so
  /// spikes between samples survive. `probe` doubles as the floor when no
  /// note arrives in a window.
  ColumnId add_watermark(std::string name, Probe probe);

  /// Hot-path feed for a watermark column (no-op before attach()).
  void note(ColumnId column, double value) {
    if (attached_ && value > columns_[column].noted) {
      columns_[column].noted = value;
    }
  }

  // --- Run control ---
  /// Installs the self-rescheduling sample event (first sample one interval
  /// from now). `stop_rearming` — when supplied — is consulted after each
  /// sample; once it returns true no further event is parked, so a
  /// drain-to-quiescence run can empty its calendar (the same contract as
  /// the auditor's checkpoint event). `simulator` must outlive this.
  void attach(des::Simulator& simulator, std::function<bool()> stop_rearming = {});

  /// Stamps the warm-up boundary: samples so far stay flagged warm-up,
  /// counter columns re-baseline to their current probe values, and the
  /// window in progress restarts at `now`.
  void mark_measurement_start(double now);

  /// Takes one sample immediately (requires a prior attach()).
  void sample();

  /// True once attach()ed; callers skip all wiring work when a Timeline is
  /// absent, mirroring DecisionTracer::active().
  [[nodiscard]] bool active() const { return attached_; }

  // --- Results ---
  struct Column {
    std::string name;
    TimelineColumnKind kind = TimelineColumnKind::kGauge;
    Probe probe;
    double last = 0.0;   // counter baseline
    double noted = 0.0;  // watermark accumulator (reset per window)
    bool has_note = false;
  };

  [[nodiscard]] const std::vector<Column>& columns() const { return columns_; }
  [[nodiscard]] const std::vector<TimelineSample>& samples() const { return samples_; }
  [[nodiscard]] const TimelineOptions& options() const { return options_; }
  /// Simulated time of the warm-up boundary (unset before it is marked).
  [[nodiscard]] std::optional<double> measurement_start() const { return measurement_start_; }

  /// One header object (columns, interval, warm-up boundary) then one JSON
  /// object per sample per line. Deterministic: same samples, same bytes.
  void write_jsonl(std::ostream& out) const;
  /// Wide CSV: `time,window_s,warmup,<column names...>`, one row per sample.
  void write_csv(std::ostream& out) const;

 private:
  ColumnId add_column(std::string name, TimelineColumnKind kind, Probe probe);
  void schedule_sample();

  TimelineOptions options_;
  des::Simulator* simulator_ = nullptr;
  des::EventCategory category_;  // "obs.timeline" kernel tag
  std::function<bool()> stop_rearming_;
  bool attached_ = false;
  std::optional<double> measurement_start_;
  double window_start_ = 0.0;
  std::vector<Column> columns_;
  std::vector<TimelineSample> samples_;
};

}  // namespace anyqos::obs
