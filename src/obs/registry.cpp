#include "src/obs/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::obs {

namespace {

// Prometheus label-value escaping: backslash, double quote, and newline.
std::string prometheus_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// HELP text escapes backslash and newline only (no quotes in that position).
std::string prometheus_escape_help(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Renders a number for exposition: integers without a decimal point, other
// values with enough digits to round-trip.
std::string render_number(double value) {
  // The Prometheus exposition format spells non-finite values +Inf/-Inf/NaN
  // (%.17g would print "inf"/"nan", which scrapers reject). JSON writers
  // bypass this via write_number_json, which maps them to null.
  if (std::isnan(value)) {
    return "NaN";
  }
  if (std::isinf(value)) {
    return value > 0.0 ? "+Inf" : "-Inf";
  }
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return std::string(buffer);
}

// Canonical key for a sorted label set: k1="v1",k2="v2" (escaped).
std::string canonical_labels(const Labels& labels) {
  std::string key;
  for (const Label& label : labels) {
    if (!key.empty()) {
      key += ',';
    }
    key += label.key;
    key += "=\"";
    key += prometheus_escape(label.value);
    key += '"';
  }
  return key;
}

void write_label_block(std::ostream& out, const std::string& canonical) {
  if (!canonical.empty()) {
    out << '{' << canonical << '}';
  }
}

void write_labels_json(std::ostream& out, const Labels& labels) {
  out << '{';
  bool first = true;
  for (const Label& label : labels) {
    if (!first) {
      out << ',';
    }
    first = false;
    out << '"' << util::json_escape(label.key) << "\":\"" << util::json_escape(label.value)
        << '"';
  }
  out << '}';
}

// JSON cannot carry Inf/NaN; map them to null.
void write_number_json(std::ostream& out, double value) {
  if (std::isfinite(value)) {
    out << render_number(value);
  } else {
    out << "null";
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  util::require(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (const double bound : bounds_) {
    util::require(!std::isnan(bound), "histogram bounds must not be NaN");
  }
  util::require(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) == bounds_.end(),
                "histogram bounds must be strictly increasing");
  buckets_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value, std::uint64_t count) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::lock_guard<std::mutex> lock(mutex_);
  buckets_[static_cast<std::size_t>(it - bounds_.begin())] += count;
  count_ += count;
  sum_ += value * static_cast<double>(count);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  util::require(i < bounds_.size() + 1, "histogram bucket index out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  return buckets_[i];
}

std::uint64_t Histogram::cumulative_count(std::size_t i) const {
  util::require(i < bounds_.size() + 1, "histogram bucket index out of range");
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i; ++b) {
    total += buckets_[b];
  }
  return total;
}

std::uint64_t Histogram::count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.cumulative.reserve(bounds_.size() + 1);
  std::uint64_t running = 0;
  for (std::size_t b = 0; b < bounds_.size(); ++b) {
    running += buckets_[b];
    snap.cumulative.push_back(running);
  }
  // The implicit +Inf bucket: cumulative.back() always equals count.
  snap.cumulative.push_back(count_);
  snap.count = count_;
  snap.sum = sum_;
  return snap;
}

std::string to_string(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  util::unreachable("MetricType");
}

MetricsRegistry::Family& MetricsRegistry::family_for(const std::string& name,
                                                     const std::string& help,
                                                     MetricType type) {
  util::require(!name.empty(), "metric name must not be empty");
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.help = help;
    it->second.type = type;
  } else {
    util::require(it->second.type == type,
                  "metric '" + name + "' already registered as " +
                      to_string(it->second.type) + ", not " + to_string(type));
  }
  return it->second;
}

MetricsRegistry::Series& MetricsRegistry::series_for(Family& family, Labels labels) {
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  for (std::size_t i = 1; i < labels.size(); ++i) {
    util::require(labels[i - 1].key != labels[i].key, "duplicate label key in series");
  }
  for (const Label& label : labels) {
    util::require(!label.key.empty(), "label key must not be empty");
  }
  auto [it, inserted] = family.series.try_emplace(canonical_labels(labels));
  if (inserted) {
    it->second.labels = std::move(labels);
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& series = series_for(family_for(name, help, MetricType::kCounter), std::move(labels));
  if (series.counter == nullptr) {
    series.counter = std::make_unique<Counter>();
  }
  return *series.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help, Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& series = series_for(family_for(name, help, MetricType::kGauge), std::move(labels));
  if (series.gauge == nullptr) {
    series.gauge = std::make_unique<Gauge>();
  }
  return *series.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help,
                                      std::vector<double> bounds, Labels labels) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Series& series =
      series_for(family_for(name, help, MetricType::kHistogram), std::move(labels));
  if (series.histogram == nullptr) {
    series.histogram = std::make_unique<Histogram>(std::move(bounds));
  } else {
    util::require(series.histogram->bounds() == bounds,
                  "histogram '" + name + "' re-registered with different bounds");
  }
  return *series.histogram;
}

std::size_t MetricsRegistry::family_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return families_.size();
}

std::size_t MetricsRegistry::cardinality(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = families_.find(name);
  return it == families_.end() ? 0 : it->second.series.size();
}

std::size_t MetricsRegistry::series_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [name, family] : families_) {
    total += family.series.size();
  }
  return total;
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, family] : families_) {
    out << "# HELP " << name << ' ' << prometheus_escape_help(family.help) << '\n';
    out << "# TYPE " << name << ' ' << to_string(family.type) << '\n';
    for (const auto& [canonical, series] : family.series) {
      switch (family.type) {
        case MetricType::kCounter:
          out << name;
          write_label_block(out, canonical);
          out << ' ' << series.counter->value() << '\n';
          break;
        case MetricType::kGauge:
          out << name;
          write_label_block(out, canonical);
          out << ' ' << render_number(series.gauge->value()) << '\n';
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *series.histogram;
          const Histogram::Snapshot snap = h.snapshot();
          const std::string sep = canonical.empty() ? "" : ",";
          // Non-finite bounds are skipped: a user-supplied +Inf last bound
          // must not double-emit against the mandatory +Inf line below (its
          // observations are still in snap.count), and a -Inf bound has no
          // meaningful exposition of its own.
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            if (!std::isfinite(h.bounds()[i])) {
              continue;
            }
            out << name << "_bucket{" << canonical << sep
                << "le=\"" << render_number(h.bounds()[i]) << "\"} "
                << snap.cumulative[i] << '\n';
          }
          // The cumulative +Inf bucket is mandatory and always equals _count.
          out << name << "_bucket{" << canonical << sep << "le=\"+Inf\"} " << snap.count
              << '\n';
          out << name << "_sum";
          write_label_block(out, canonical);
          out << ' ' << render_number(snap.sum) << '\n';
          out << name << "_count";
          write_label_block(out, canonical);
          out << ' ' << snap.count << '\n';
          break;
        }
      }
    }
  }
}

void MetricsRegistry::write_jsonl(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, family] : families_) {
    for (const auto& [canonical, series] : family.series) {
      out << "{\"name\":\"" << util::json_escape(name) << "\",\"type\":\""
          << to_string(family.type) << "\",\"labels\":";
      write_labels_json(out, series.labels);
      switch (family.type) {
        case MetricType::kCounter:
          out << ",\"value\":" << series.counter->value();
          break;
        case MetricType::kGauge:
          out << ",\"value\":";
          write_number_json(out, series.gauge->value());
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *series.histogram;
          const Histogram::Snapshot snap = h.snapshot();
          out << ",\"buckets\":[";
          bool first = true;
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            // Non-finite bounds would render as {"le":null}; skip them like
            // the Prometheus writer does (count/sum still cover them).
            if (!std::isfinite(h.bounds()[i])) {
              continue;
            }
            if (!first) {
              out << ',';
            }
            first = false;
            out << "{\"le\":";
            write_number_json(out, h.bounds()[i]);
            out << ",\"count\":" << snap.cumulative[i] << '}';
          }
          out << "],\"sum\":";
          write_number_json(out, snap.sum);
          out << ",\"count\":" << snap.count;
          break;
        }
      }
      out << "}\n";
    }
  }
}

}  // namespace anyqos::obs
