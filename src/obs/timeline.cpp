#include "src/obs/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <utility>

#include "src/des/simulator.h"
#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::obs {

namespace {

// Round-trip rendering shared by both writers so the determinism contract
// holds byte-for-byte across formats.
void write_number(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << "null";
    return;
  }
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    out << static_cast<long long>(value);
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out << buffer;
}

}  // namespace

std::string to_string(TimelineColumnKind kind) {
  switch (kind) {
    case TimelineColumnKind::kGauge:
      return "gauge";
    case TimelineColumnKind::kRate:
      return "rate";
    case TimelineColumnKind::kWatermark:
      return "watermark";
  }
  util::unreachable("TimelineColumnKind");
}

Timeline::Timeline(TimelineOptions options) : options_(options) {
  util::require(options_.interval_s > 0.0, "timeline interval must be positive");
}

Timeline::ColumnId Timeline::add_column(std::string name, TimelineColumnKind kind,
                                        Probe probe) {
  util::require(!attached_, "register timeline columns before attach()");
  util::require(!name.empty(), "timeline column name must not be empty");
  util::require(probe != nullptr, "timeline column needs a probe");
  Column column;
  column.name = std::move(name);
  column.kind = kind;
  column.probe = std::move(probe);
  column.noted = -std::numeric_limits<double>::infinity();
  columns_.push_back(std::move(column));
  return columns_.size() - 1;
}

Timeline::ColumnId Timeline::add_gauge(std::string name, Probe probe) {
  return add_column(std::move(name), TimelineColumnKind::kGauge, std::move(probe));
}

Timeline::ColumnId Timeline::add_counter(std::string name, Probe probe) {
  return add_column(std::move(name), TimelineColumnKind::kRate, std::move(probe));
}

Timeline::ColumnId Timeline::add_watermark(std::string name, Probe probe) {
  return add_column(std::move(name), TimelineColumnKind::kWatermark, std::move(probe));
}

void Timeline::attach(des::Simulator& simulator, std::function<bool()> stop_rearming) {
  util::require(!attached_, "timeline already attached");
  simulator_ = &simulator;
  category_ = simulator.category("obs.timeline");
  stop_rearming_ = std::move(stop_rearming);
  attached_ = true;
  window_start_ = simulator.now();
  for (Column& column : columns_) {
    if (column.kind == TimelineColumnKind::kRate) {
      column.last = column.probe();
    }
  }
  schedule_sample();
}

void Timeline::schedule_sample() {
  // Self-rescheduling like the auditor's checkpoint: one pending event at
  // all times, parked past the horizon between run_until() calls.
  simulator_->schedule_in(options_.interval_s, category_, [this] {
    sample();
    if (stop_rearming_ == nullptr || !stop_rearming_()) {
      schedule_sample();
    }
  });
}

void Timeline::mark_measurement_start(double now) {
  util::require(attached_, "mark_measurement_start requires an attached timeline");
  util::require(!measurement_start_.has_value(), "measurement start already marked");
  measurement_start_ = now;
  window_start_ = now;
  for (Column& column : columns_) {
    if (column.kind == TimelineColumnKind::kRate) {
      column.last = column.probe();
    }
  }
}

void Timeline::sample() {
  util::require(attached_, "sample requires an attached timeline");
  const double now = simulator_->now();
  const double window = now - window_start_;
  TimelineSample row;
  row.time = now;
  row.window_s = window;
  row.warmup = !measurement_start_.has_value();
  row.values.reserve(columns_.size());
  for (Column& column : columns_) {
    switch (column.kind) {
      case TimelineColumnKind::kGauge:
        row.values.push_back(column.probe());
        break;
      case TimelineColumnKind::kRate: {
        const double current = column.probe();
        const double delta = std::max(0.0, current - column.last);
        column.last = current;
        row.values.push_back(window > 0.0 ? delta / window : 0.0);
        break;
      }
      case TimelineColumnKind::kWatermark: {
        const double floor = column.probe();
        row.values.push_back(std::max(column.noted, floor));
        column.noted = -std::numeric_limits<double>::infinity();
        break;
      }
    }
  }
  samples_.push_back(std::move(row));
  window_start_ = now;
}

void Timeline::write_jsonl(std::ostream& out) const {
  out << "{\"timeline\":\"header\",\"interval_s\":";
  write_number(out, options_.interval_s);
  out << ",\"measurement_start_s\":";
  if (measurement_start_.has_value()) {
    write_number(out, *measurement_start_);
  } else {
    out << "null";
  }
  out << ",\"columns\":[";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) {
      out << ',';
    }
    out << "{\"name\":\"" << util::json_escape(columns_[i].name) << "\",\"kind\":\""
        << to_string(columns_[i].kind) << "\"}";
  }
  out << "]}\n";
  for (const TimelineSample& row : samples_) {
    out << "{\"timeline\":\"sample\",\"t\":";
    write_number(out, row.time);
    out << ",\"window_s\":";
    write_number(out, row.window_s);
    out << ",\"warmup\":" << (row.warmup ? "true" : "false") << ",\"values\":[";
    for (std::size_t i = 0; i < row.values.size(); ++i) {
      if (i > 0) {
        out << ',';
      }
      write_number(out, row.values[i]);
    }
    out << "]}\n";
  }
}

void Timeline::write_csv(std::ostream& out) const {
  out << "time,window_s,warmup";
  for (const Column& column : columns_) {
    out << ',' << column.name;
  }
  out << '\n';
  for (const TimelineSample& row : samples_) {
    write_number(out, row.time);
    out << ',';
    write_number(out, row.window_s);
    out << ',' << (row.warmup ? 1 : 0);
    for (const double value : row.values) {
      out << ',';
      write_number(out, value);
    }
    out << '\n';
  }
}

}  // namespace anyqos::obs
