// Fault-triggered flight recorder (observability layer 5).
//
// A bounded ring buffer of the most recent decision spans and annotated
// model events. Nothing is written while the run is healthy; when a trigger
// fires — the InvariantAuditor raises a violation, a link outage takes a
// flow down, a churn event kills a group member — the recorder dumps the
// ring as a JSONL snapshot: the bounded causal history that led up to the
// fault, black-box style. This turns a chaos-matrix pass/fail verdict into
// an explainable sequence of the last N decisions.
//
// The recorder plugs into the existing tracing plane rather than adding a
// second collection path: span_sink() is a SpanSink the DecisionTracer
// writes into (optionally teeing to a downstream sink such as a JSONL
// file), and note() accepts the flow/link/member events the simulation
// already assembles for its trace stream.
//
// Cost discipline: like the no-sink span path, a recorder that is not
// threaded into the simulation costs nothing — every producer checks its
// config pointer first. Snapshots are bounded twice: the ring holds at most
// `depth` entries and at most `max_dumps` snapshots are written per run
// (later triggers are still counted, so the tally stays honest).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/obs/span.h"

namespace anyqos::obs {

/// Tuning knobs for the recorder.
struct FlightRecorderOptions {
  /// Ring capacity in entries (spans + events); must be positive.
  std::size_t depth = 256;
  /// Snapshots written per recorder lifetime; further triggers only count.
  std::size_t max_dumps = 16;
};

/// One annotated model event in the ring (anything that is not a span):
/// flow admissions/drops, link outages, member churn.
struct FlightNote {
  double time = 0.0;
  std::string kind;    ///< e.g. "dropped", "link_down", "member_down"
  std::string detail;  ///< free-form context assembled by the producer
};

/// Bounded black-box recorder; see the file comment for the contract.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options = {});

  /// The sink to attach a DecisionTracer to: every span lands in the ring
  /// and is forwarded to the downstream sink (when one is set). The
  /// returned reference is valid for the recorder's lifetime.
  [[nodiscard]] SpanSink& span_sink() { return sink_; }
  /// Tees every span this recorder receives on to `sink` (nullptr
  /// detaches), so a run can keep a full spans-out artifact *and* the
  /// bounded flight ring from one tracer.
  void set_forward(SpanSink* sink) { forward_ = sink; }

  /// Appends one model event to the ring.
  void note(double time, std::string_view kind, std::string_view detail);

  /// Snapshot destination (nullptr detaches: triggers only count). `out`
  /// must outlive the recorder or be detached first.
  void set_output(std::ostream* out) { out_ = out; }

  /// Fires one trigger: writes the ring (oldest entry first) as a JSONL
  /// snapshot to the attached output — a header object carrying `reason`
  /// and the trigger time, then one line per entry — unless no output is
  /// attached or max_dumps is exhausted. Returns the entries dumped (0 when
  /// the snapshot was suppressed). The ring is NOT cleared: overlapping
  /// triggers each see the full causal window.
  std::size_t trigger(double time, std::string_view reason);

  [[nodiscard]] std::size_t entries() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t triggers() const { return triggers_; }
  [[nodiscard]] std::uint64_t dumps_written() const { return dumps_written_; }
  [[nodiscard]] const FlightRecorderOptions& options() const { return options_; }

  /// Drops every buffered entry (counters are kept).
  void clear();

 private:
  using Entry = std::variant<AttemptSpan, DecisionSpan, FlightNote>;

  class RingSink final : public SpanSink {
   public:
    explicit RingSink(FlightRecorder& owner) : owner_(&owner) {}
    void on_attempt(const AttemptSpan& span) override;
    void on_decision(const DecisionSpan& span) override;

   private:
    FlightRecorder* owner_;
  };

  void push(Entry entry);
  /// Visits ring entries oldest-first.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const;

  FlightRecorderOptions options_;
  RingSink sink_{*this};
  SpanSink* forward_ = nullptr;
  std::ostream* out_ = nullptr;
  std::vector<Entry> ring_;    // circular once full
  std::size_t next_ = 0;       // oldest entry when the ring has wrapped
  bool wrapped_ = false;
  std::uint64_t triggers_ = 0;
  std::uint64_t dumps_written_ = 0;
};

}  // namespace anyqos::obs
