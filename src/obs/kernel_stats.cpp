#include "src/obs/kernel_stats.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "src/des/simulator.h"
#include "src/util/require.h"

namespace anyqos::obs {

namespace {

// Same rendering contract as the timeline writer: integers exactly when
// representable, otherwise shortest round-trip %.17g — byte-stable across
// runs, which the kernel-stats double-run gate relies on.
void write_number(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << "null";
    return;
  }
  if (value == static_cast<double>(static_cast<long long>(value))) {
    out << static_cast<long long>(value);
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out << buffer;
}

void write_hist(std::ostream& out, const KernelStats::BucketCounts& hist) {
  out << "{\"bounds\":[";
  for (std::size_t i = 0; i < hist.n; ++i) {
    if (i > 0) {
      out << ',';
    }
    write_number(out, hist.upper[i]);
  }
  out << "],\"counts\":[";
  for (std::size_t i = 0; i <= hist.n; ++i) {
    if (i > 0) {
      out << ',';
    }
    out << hist.counts[i];
  }
  out << "],\"count\":" << hist.total() << ",\"sum\":";
  write_number(out, hist.sum);
  out << '}';
}

// Default virtual-seconds bounds covering every timer population in the
// model: sub-millisecond signaling hops through multi-thousand-second
// holding times and breaker cooldowns.
std::vector<double> default_seconds_bounds() {
  return {0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0};
}

std::vector<double> default_burst_bounds() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
}

}  // namespace

KernelStats::BucketCounts::BucketCounts(const std::vector<double>& bounds) : n(bounds.size()) {
  util::require(n <= kMaxBounds, "too many histogram bounds");
  upper.fill(std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < n; ++i) {
    upper[i] = bounds[i];
  }
}

void KernelStats::BucketCounts::observe(double value) {
  // Branchless rank: the target bucket is the number of bounds strictly
  // below `value` (== index of the first bound >= value, or n for +Inf;
  // padding bounds are +Inf so they never count). Event times are
  // scattered across decades, so an early-exit scan mispredicts on every
  // call; a fixed 8 flag-adds over inline storage costs less. This runs
  // twice per simulated event when a sink is attached — it is the hottest
  // code in the telemetry plane.
  std::size_t bucket = 0;
  for (std::size_t i = 0; i < kMaxBounds; ++i) {
    bucket += static_cast<std::size_t>(value > upper[i]);
  }
  ++counts[bucket];
  sum += value;
}

std::uint64_t KernelStats::BucketCounts::total() const {
  std::uint64_t observations = 0;
  for (std::size_t i = 0; i <= n; ++i) {
    observations += counts[i];
  }
  return observations;
}

KernelStats::CategoryStats::CategoryStats(const std::vector<double>& horizon_bounds,
                                          const std::vector<double>& wait_bounds)
    : horizon(horizon_bounds), wait(wait_bounds) {}

KernelStats::KernelStats()
    : seconds_bounds_(default_seconds_bounds()),
      burst_bounds_(default_burst_bounds()),
      burst_(default_burst_bounds()) {}

void KernelStats::attach(des::Simulator& simulator) {
  util::require(simulator_ == nullptr, "kernel stats already attached");
  util::require(simulator.kernel_sink() == nullptr,
                "simulator already has a kernel sink");
  util::require(simulator.pending_events() == 0 && simulator.dispatched_events() == 0,
                "attach kernel stats before the first schedule");
  simulator_ = &simulator;
  simulator.set_kernel_sink(this);
}

KernelStats::CategoryStats& KernelStats::stats_for(std::uint16_t category_id) {
  while (categories_.size() <= category_id) {
    categories_.emplace_back(seconds_bounds_, seconds_bounds_);
  }
  return categories_[category_id];
}

void KernelStats::on_scheduled(des::EventCategory category, double now, double when) {
  CategoryStats& stats = stats_for(category.id);
  ++stats.scheduled;
  stats.horizon.observe(when - now);
}

void KernelStats::on_fired(des::EventCategory category, double scheduled_at, double now) {
  CategoryStats& stats = stats_for(category.id);
  ++stats.fired;
  stats.wait.observe(now - scheduled_at);
  if (open_burst_ > 0 && now == last_fire_time_) {
    ++open_burst_;
  } else {
    if (open_burst_ > 0) {
      burst_.observe(static_cast<double>(open_burst_));
    }
    open_burst_ = 1;
    last_fire_time_ = now;
  }
}

void KernelStats::on_cancelled(des::EventCategory category, double /*now*/) {
  ++stats_for(category.id).cancelled;
}

std::size_t KernelStats::still_pending() const {
  util::require(simulator_ != nullptr, "kernel stats not attached");
  return simulator_->pending_events();
}

std::size_t KernelStats::queue_depth_high_water() const {
  util::require(simulator_ != nullptr, "kernel stats not attached");
  return simulator_->peak_pending_events();
}

const std::vector<std::string>& KernelStats::category_names() const {
  util::require(simulator_ != nullptr, "kernel stats not attached");
  return simulator_->category_names();
}

std::uint64_t KernelStats::total_scheduled() const {
  std::uint64_t total = 0;
  for (const CategoryStats& stats : categories_) {
    total += stats.scheduled;
  }
  return total;
}

std::uint64_t KernelStats::total_fired() const {
  std::uint64_t total = 0;
  for (const CategoryStats& stats : categories_) {
    total += stats.fired;
  }
  return total;
}

std::uint64_t KernelStats::total_cancelled() const {
  std::uint64_t total = 0;
  for (const CategoryStats& stats : categories_) {
    total += stats.cancelled;
  }
  return total;
}

std::uint64_t KernelStats::tombstones_popped() const {
  util::require(simulator_ != nullptr, "kernel stats not attached");
  return simulator_->tombstones_popped();
}

double KernelStats::tombstone_ratio() const {
  const std::uint64_t tombstones = tombstones_popped();
  const std::uint64_t pops = tombstones + total_fired();
  return pops == 0 ? 0.0 : static_cast<double>(tombstones) / static_cast<double>(pops);
}

KernelStats::BucketCounts KernelStats::burst_histogram() const {
  BucketCounts closed = burst_;
  if (open_burst_ > 0) {
    closed.observe(static_cast<double>(open_burst_));
  }
  return closed;
}

void KernelStats::write_jsonl(std::ostream& out) const {
  const std::vector<std::string>& names = category_names();
  out << "{\"kernel\":\"header\",\"schema\":\"anyqos-kernel-stats/1\",\"categories\":"
      << names.size() << "}\n";
  const CategoryStats empty(seconds_bounds_, seconds_bounds_);
  for (std::size_t i = 0; i < names.size(); ++i) {
    const CategoryStats& stats = i < categories_.size() ? categories_[i] : empty;
    out << "{\"kernel\":\"category\",\"name\":\"" << names[i]
        << "\",\"scheduled\":" << stats.scheduled << ",\"fired\":" << stats.fired
        << ",\"cancelled\":" << stats.cancelled
        << ",\"pending\":" << stats.still_pending() << ",\"horizon\":";
    write_hist(out, stats.horizon);
    out << ",\"wait\":";
    write_hist(out, stats.wait);
    out << "}\n";
  }
  out << "{\"kernel\":\"summary\",\"scheduled\":" << total_scheduled()
      << ",\"fired\":" << total_fired() << ",\"cancelled\":" << total_cancelled()
      << ",\"pending\":" << still_pending()
      << ",\"dispatched\":" << simulator_->dispatched_events()
      << ",\"queue_depth_hwm\":" << queue_depth_high_water()
      << ",\"tombstones_popped\":" << tombstones_popped() << ",\"tombstone_ratio\":";
  write_number(out, tombstone_ratio());
  out << ",\"burst\":";
  write_hist(out, burst_histogram());
  out << "}\n";
}

void KernelStats::export_to(MetricsRegistry& registry, const Labels& extra) const {
  const std::vector<std::string>& names = category_names();
  const CategoryStats empty(seconds_bounds_, seconds_bounds_);
  // Aggregate histograms across categories: one series each keeps the
  // exposition small while the JSONL artifact carries the per-category cut.
  Histogram& horizon = registry.histogram(
      "anyqos_kernel_horizon_seconds",
      "Scheduling horizon (due minus now at schedule time), virtual seconds.",
      seconds_bounds_, extra);
  Histogram& wait = registry.histogram(
      "anyqos_kernel_wait_seconds",
      "Virtual time events spent in the queue before firing.", seconds_bounds_, extra);
  const auto replay = [](Histogram& target, const BucketCounts& hist) {
    for (std::size_t i = 0; i < hist.n; ++i) {
      if (hist.counts[i] > 0) {
        target.observe(hist.upper[i], hist.counts[i]);
      }
    }
    if (hist.counts[hist.n] > 0) {
      target.observe(hist.upper[hist.n - 1] * 2.0, hist.counts[hist.n]);
    }
  };
  for (std::size_t i = 0; i < names.size(); ++i) {
    const CategoryStats& stats = i < categories_.size() ? categories_[i] : empty;
    const auto outcome_counter = [&](const char* outcome, std::uint64_t value) {
      Labels labels = extra;
      labels.push_back({"category", names[i]});
      labels.push_back({"outcome", outcome});
      registry
          .counter("anyqos_kernel_events_total",
                   "Kernel events by category and scheduling outcome.", std::move(labels))
          .increment(value);
    };
    outcome_counter("scheduled", stats.scheduled);
    outcome_counter("fired", stats.fired);
    outcome_counter("cancelled", stats.cancelled);
    replay(horizon, stats.horizon);
    replay(wait, stats.wait);
  }
  Histogram& burst = registry.histogram(
      "anyqos_kernel_burst_length",
      "Lengths of maximal same-timestamp event bursts (FIFO tie-break runs).",
      burst_bounds_, extra);
  replay(burst, burst_histogram());
  registry
      .gauge("anyqos_kernel_queue_depth_hwm",
             "High-water mark of the pending-event set while attached.", extra)
      .set(static_cast<double>(queue_depth_high_water()));
  registry
      .counter("anyqos_kernel_tombstones_total",
               "Tombstoned (cancelled) heap entries skipped by the event queue.", extra)
      .increment(tombstones_popped());
  registry
      .gauge("anyqos_kernel_tombstone_ratio",
             "Fraction of heap pops that were cancellation tombstones.", extra)
      .set(tombstone_ratio());
}

}  // namespace anyqos::obs
