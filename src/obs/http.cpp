#include "src/obs/http.h"

#include <algorithm>
#include <cctype>

#include "src/util/strings.h"

namespace anyqos::obs {

namespace {

// ASCII lower-case; header names are token characters, so no locale issues.
std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

// Splits `head` into lines, accepting CRLF or bare LF terminators. A
// trailing newline yields no empty final line.
std::vector<std::string_view> split_lines(std::string_view head) {
  std::vector<std::string_view> lines;
  while (!head.empty()) {
    const std::size_t nl = head.find('\n');
    std::string_view line = head.substr(0, nl);
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    lines.push_back(line);
    if (nl == std::string_view::npos) {
      break;
    }
    head.remove_prefix(nl + 1);
  }
  return lines;
}

}  // namespace

std::optional<HttpRequest> parse_request_head(std::string_view head) {
  const std::vector<std::string_view> lines = split_lines(head);
  if (lines.empty()) {
    return std::nullopt;
  }
  // Request line: method SP request-target SP HTTP-version (single spaces).
  const std::string_view request_line = lines.front();
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos
                              ? std::string_view::npos
                              : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos || sp1 == 0 ||
      sp2 == sp1 + 1 || sp2 + 1 >= request_line.size() ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return std::nullopt;
  }
  HttpRequest request;
  request.method = std::string(request_line.substr(0, sp1));
  request.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(request_line.substr(sp2 + 1));
  if (!util::starts_with(request.version, "HTTP/")) {
    return std::nullopt;
  }
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (line.empty()) {
      break;  // blank line: end of the head (callers usually strip it)
    }
    const std::size_t colon = line.find(':');
    // A name is non-empty and carries no whitespace (RFC 9112 rejects space
    // before the colon to close request-smuggling ambiguity).
    if (colon == std::string_view::npos || colon == 0 ||
        line.substr(0, colon).find_first_of(" \t") != std::string_view::npos) {
      return std::nullopt;
    }
    request.headers.emplace_back(to_lower(line.substr(0, colon)),
                                 std::string(util::trim(line.substr(colon + 1))));
  }
  return request;
}

std::optional<std::string_view> find_header(const HttpRequest& request,
                                            std::string_view name) {
  const std::string wanted = to_lower(name);
  for (const auto& [key, value] : request.headers) {
    if (key == wanted) {
      return value;
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> content_length(const HttpRequest& request) {
  const std::optional<std::string_view> value = find_header(request, "content-length");
  if (!value.has_value()) {
    return 0;
  }
  const std::optional<unsigned long long> parsed = util::parse_unsigned(*value);
  if (!parsed.has_value()) {
    return std::nullopt;
  }
  return static_cast<std::size_t>(*parsed);
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Content Too Large";
    case 422:
      return "Unprocessable Content";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string render_response(int status, std::string_view content_type,
                            std::string_view body) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += status_reason(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace anyqos::obs
