#include "src/obs/flight_recorder.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <utility>

#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::obs {

namespace {

void write_number(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << "null";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out << buffer;
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderOptions options) : options_(options) {
  util::require(options_.depth > 0, "flight recorder depth must be positive");
}

void FlightRecorder::RingSink::on_attempt(const AttemptSpan& span) {
  owner_->push(span);
  if (owner_->forward_ != nullptr) {
    owner_->forward_->on_attempt(span);
  }
}

void FlightRecorder::RingSink::on_decision(const DecisionSpan& span) {
  owner_->push(span);
  if (owner_->forward_ != nullptr) {
    owner_->forward_->on_decision(span);
  }
}

void FlightRecorder::note(double time, std::string_view kind, std::string_view detail) {
  FlightNote event;
  event.time = time;
  event.kind = std::string(kind);
  event.detail = std::string(detail);
  push(std::move(event));
}

void FlightRecorder::push(Entry entry) {
  if (ring_.size() < options_.depth) {
    ring_.push_back(std::move(entry));
    return;
  }
  ring_[next_] = std::move(entry);
  next_ = (next_ + 1) % options_.depth;
  wrapped_ = true;
}

template <typename Fn>
void FlightRecorder::for_each_entry(Fn&& fn) const {
  if (!wrapped_ && next_ == 0) {
    for (const Entry& entry : ring_) {
      fn(entry);
    }
    return;
  }
  // The ring has wrapped (or rotated): next_ indexes the oldest entry.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    fn(ring_[(next_ + i) % ring_.size()]);
  }
}

std::size_t FlightRecorder::trigger(double time, std::string_view reason) {
  ++triggers_;
  if (out_ == nullptr || dumps_written_ >= options_.max_dumps) {
    return 0;
  }
  ++dumps_written_;
  *out_ << "{\"flight\":\"snapshot\",\"reason\":\"" << util::json_escape(reason)
        << "\",\"t\":";
  write_number(*out_, time);
  *out_ << ",\"seq\":" << dumps_written_ << ",\"entries\":" << ring_.size() << "}\n";
  JsonlSpanSink spans(*out_);
  std::size_t dumped = 0;
  for_each_entry([&](const Entry& entry) {
    ++dumped;
    if (const auto* attempt = std::get_if<AttemptSpan>(&entry)) {
      spans.on_attempt(*attempt);
    } else if (const auto* decision = std::get_if<DecisionSpan>(&entry)) {
      spans.on_decision(*decision);
    } else {
      const FlightNote& note = std::get<FlightNote>(entry);
      *out_ << "{\"flight\":\"event\",\"t\":";
      write_number(*out_, note.time);
      *out_ << ",\"kind\":\"" << util::json_escape(note.kind) << "\",\"detail\":\""
            << util::json_escape(note.detail) << "\"}\n";
    }
  });
  return dumped;
}

void FlightRecorder::clear() {
  ring_.clear();
  next_ = 0;
  wrapped_ = false;
}

}  // namespace anyqos::obs
