#include "src/obs/ops_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>

#include "src/util/annotations.h"
#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::obs {

namespace {

// A peer that disconnects mid-write would otherwise kill the process with
// SIGPIPE; every send() also passes MSG_NOSIGNAL, this is belt-and-braces
// for platforms where that flag is advisory. Signal disposition is
// process-global by nature, hence the one-time guard.
ANYQOS_DETLINT_ALLOW(global_state, "SIGPIPE disposition is process-global by nature: set once, never read, no effect on model state");
std::once_flag sigpipe_once;

void ignore_sigpipe() {
  std::call_once(sigpipe_once, [] { (void)std::signal(SIGPIPE, SIG_IGN); });
}

// Wall-clock seconds for the /healthz events/s rate. This is the ops
// plane's only clock read and it never feeds back into the simulation.
double wall_seconds() {
  ANYQOS_DETLINT_ALLOW(wall_clock, "events/s in /healthz is wall-clock by definition; the value never reaches model state");
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

// Accept-loop poll timeout: how stale a stop() request may go unnoticed.
constexpr int kPollTimeoutMs = 50;
// Per-connection inactivity budget before the server gives up on a peer.
constexpr int kConnectionIdleMs = 2'000;

std::string json_error(std::string_view message) {
  std::string out = "{\"error\":\"";
  out += util::json_escape(message);
  out += "\"}\n";
  return out;
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return;  // peer went away; nothing useful to do with a half-sent reply
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

OpsServer::OpsServer(OpsServerOptions options) : options_(std::move(options)) {
  util::require(options_.max_request_bytes >= 512,
                "ops server request cap must be at least 512 bytes");
}

OpsServer::~OpsServer() { stop(); }

void OpsServer::set_control_handler(ControlHandler handler) {
  util::require(!running_.load(), "install the control handler before start()");
  control_handler_ = std::move(handler);
}

void OpsServer::start() {
  util::require(listen_fd_ < 0, "ops server already started");
  ignore_sigpipe();
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  util::require(listen_fd_ >= 0, "ops server: socket() failed");
  const int enable = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &address.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    util::require(false, "ops server: bad bind address '" + options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    util::require(false, "ops server: cannot listen on " + options_.bind_address + ":" +
                             std::to_string(options_.port) + " (" + detail + ")");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  util::require(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0,
                "ops server: getsockname() failed");
  port_ = ntohs(bound.sin_port);
  stop_.store(false);
  running_.store(true);
  thread_ = std::thread([this] { serve(); });
}

void OpsServer::stop() {
  stop_.store(true);
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false);
}

void OpsServer::serve() {
  while (!stop_.load()) {
    pollfd waiter{};
    waiter.fd = listen_fd_;
    waiter.events = POLLIN;
    const int ready = ::poll(&waiter, 1, kPollTimeoutMs);
    if (ready <= 0) {
      continue;  // timeout (re-check stop_) or a benign EINTR
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    // Connections are handled serially on this one thread: the ops plane is
    // a low-rate viewport, and a single thread keeps the locking story (one
    // producer, one consumer per shared structure) trivially auditable.
    handle_connection(fd);
    ::close(fd);
  }
}

void OpsServer::handle_connection(int fd) {
  std::string buffer;
  std::size_t head_end = std::string::npos;
  std::size_t head_skip = 0;
  int idle_budget_ms = kConnectionIdleMs;
  std::optional<HttpRequest> request;
  std::size_t body_needed = 0;
  while (true) {
    if (head_end == std::string::npos) {
      head_end = buffer.find("\r\n\r\n");
      head_skip = 4;
      if (head_end == std::string::npos) {
        head_end = buffer.find("\n\n");
        head_skip = 2;
      }
      if (head_end != std::string::npos) {
        if (head_end > options_.max_request_bytes) {
          send_all(fd, render_response(413, "application/json",
                                       json_error("request too large")));
          return;
        }
        request = parse_request_head(std::string_view(buffer).substr(0, head_end));
        if (!request.has_value()) {
          send_all(fd, render_response(400, "application/json",
                                       json_error("malformed request head")));
          return;
        }
        const std::optional<std::size_t> length = content_length(*request);
        if (!length.has_value()) {
          send_all(fd, render_response(400, "application/json",
                                       json_error("bad Content-Length")));
          return;
        }
        body_needed = *length;
        if (body_needed > options_.max_request_bytes) {
          send_all(fd, render_response(413, "application/json",
                                       json_error("request body too large")));
          return;
        }
      }
    }
    if (request.has_value() && buffer.size() >= head_end + head_skip + body_needed) {
      request->body = buffer.substr(head_end + head_skip, body_needed);
      break;
    }
    if (buffer.size() > options_.max_request_bytes) {
      send_all(fd, render_response(413, "application/json", json_error("request too large")));
      return;
    }
    pollfd waiter{};
    waiter.fd = fd;
    waiter.events = POLLIN;
    const int ready = ::poll(&waiter, 1, kPollTimeoutMs);
    if (stop_.load()) {
      return;  // shutting down: abandon the half-read request
    }
    if (ready == 0) {
      idle_budget_ms -= kPollTimeoutMs;
      if (idle_budget_ms <= 0) {
        return;  // peer stalled mid-request
      }
      continue;
    }
    if (ready < 0) {
      continue;  // EINTR
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return;  // peer closed before completing a request
    }
    idle_budget_ms = kConnectionIdleMs;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  send_all(fd, respond(*request));
  requests_served_.fetch_add(1);
}

std::string OpsServer::respond(const HttpRequest& request) {
  if (request.method == "GET") {
    if (request.target == "/") {
      // A tiny index so curl without a path shows what is scrapeable.
      std::string body = "anyqos ops plane\n\nGET endpoints:\n";
      {
        const std::lock_guard<std::mutex> lock(documents_mutex_);
        for (const auto& [path, document] : documents_) {
          body += "  ";
          body += path;
          body += '\n';
        }
      }
      body += "\nPOST /control/<knob> with a numeric body to steer the governor.\n";
      return render_response(200, "text/plain; charset=utf-8", body);
    }
    const std::lock_guard<std::mutex> lock(documents_mutex_);
    const auto it = documents_.find(request.target);
    if (it == documents_.end()) {
      return render_response(404, "application/json",
                             json_error("no document at " + request.target));
    }
    return render_response(200, it->second.content_type, it->second.body);
  }
  if (request.method == "POST") {
    const std::string prefix = "/control/";
    if (!util::starts_with(request.target, prefix)) {
      return render_response(404, "application/json",
                             json_error("POST targets /control/<knob>"));
    }
    if (!control_handler_) {
      return render_response(503, "application/json",
                             json_error("control plane not wired (scrape-only server)"));
    }
    const ControlOutcome outcome =
        control_handler_(request.target.substr(prefix.size()), request.body);
    return render_response(outcome.status, "application/json", outcome.body);
  }
  return render_response(405, "application/json", json_error("method not allowed"));
}

void OpsServer::publish(const std::string& path, std::string content_type, std::string body) {
  util::require(!path.empty() && path.front() == '/', "published paths start with '/'");
  const std::lock_guard<std::mutex> lock(documents_mutex_);
  Document& document = documents_[path];
  document.content_type = std::move(content_type);
  document.body = std::move(body);
}

void OpsServer::publish_health(double sim_now, std::uint64_t events_dispatched,
                               bool draining) {
  const double wall_now = wall_seconds();
  double events_per_s = 0.0;
  if (health_published_ && wall_now > last_health_wall_s_ &&
      events_dispatched >= last_health_events_) {
    events_per_s = static_cast<double>(events_dispatched - last_health_events_) /
                   (wall_now - last_health_wall_s_);
  }
  health_published_ = true;
  last_health_wall_s_ = wall_now;
  last_health_events_ = events_dispatched;
  std::string body = "{\"status\":\"ok\",\"sim_time_s\":";
  body += util::format_fixed(sim_now, 6);
  body += ",\"events_dispatched\":";
  body += std::to_string(events_dispatched);
  body += ",\"events_per_s\":";
  body += util::format_fixed(events_per_s, 1);
  body += ",\"draining\":";
  body += draining ? "true" : "false";
  body += "}\n";
  publish("/healthz", "application/json", std::move(body));
}

}  // namespace anyqos::obs
