// Admission-decision tracing (observability layer 2).
//
// Records each DAC request as a root DecisionSpan with one child AttemptSpan
// per retrial attempt, exposing exactly the state Figure 1's loop consults:
// the member the selector picked and the weight vector it drew from, the
// fixed route's hop count, the bottleneck available bandwidth the PATH walk
// observed, the per-hop reservation outcome (admitted or the blocking link),
// and the retry-counter state. Spans flow through a pluggable SpanSink —
// in-memory for tests, JSONL for tooling — so per-decision behaviour
// (oscillation, retry storms, member starvation) can be diagnosed offline,
// the way anycast CDN load managers expose per-decision state.
//
// Cost discipline: the span hot path allocates nothing when no sink is
// attached — AdmissionController checks DecisionTracer::active() before
// collecting anything (weight snapshots included).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/net/topology.h"

namespace anyqos::obs {

/// Child span: one attempt of the select -> reserve -> retry loop.
struct AttemptSpan {
  std::uint64_t request_id = 0;       ///< parent DecisionSpan id
  std::uint64_t span_id = 0;          ///< unique per tracer lifetime
  std::size_t attempt_number = 0;     ///< 1-based position in the loop
  double time = 0.0;                  ///< simulated seconds
  std::size_t member_index = 0;       ///< group-member index tried
  net::NodeId member_node = net::kInvalidNode;  ///< its router id
  std::vector<double> weights;        ///< selector weight vector drawn from
  std::size_t route_hops = 0;         ///< fixed route distance D_i
  /// Minimum available bandwidth the reservation's PATH walk observed
  /// (pre-reservation); infinite for 0-hop routes — serialized as null.
  net::Bandwidth bottleneck_bps = 0.0;
  bool admitted = false;              ///< per-hop reservation outcome
  std::optional<net::LinkId> blocking_link;  ///< hop that failed admission
  std::uint64_t messages = 0;         ///< signaling traversals this attempt
  /// PATH retransmissions the reservation needed (resilient signaling only;
  /// 0 under the fault-free protocol). Makes retry storms visible per span.
  std::uint64_t retransmits = 0;
  std::size_t retries_remaining = 0;  ///< retry-counter budget left (R - c)
};

/// Root span: one full DAC request through the Figure 1 loop.
struct DecisionSpan {
  std::uint64_t request_id = 0;
  double start_time = 0.0;            ///< simulated seconds at loop entry
  net::NodeId source = net::kInvalidNode;
  net::Bandwidth bandwidth_bps = 0.0;
  std::string algorithm;              ///< selector name ("ED", "WD/D+H", ...)
  bool admitted = false;
  std::optional<std::size_t> destination_index;  ///< set iff admitted
  std::size_t attempts = 0;           ///< child-span count
  std::uint64_t messages = 0;
  std::size_t max_attempts = 0;       ///< R, the retry budget
  std::size_t group_size = 0;         ///< K
};

/// Receives finished spans. Children arrive before their parent; every
/// AttemptSpan precedes the DecisionSpan carrying its request_id.
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void on_attempt(const AttemptSpan& span) = 0;
  virtual void on_decision(const DecisionSpan& span) = 0;
};

/// Buffers every span in memory; the workhorse for tests and diagnostics.
class MemorySpanSink final : public SpanSink {
 public:
  void on_attempt(const AttemptSpan& span) override { attempts_.push_back(span); }
  void on_decision(const DecisionSpan& span) override { decisions_.push_back(span); }

  [[nodiscard]] const std::vector<AttemptSpan>& attempts() const { return attempts_; }
  [[nodiscard]] const std::vector<DecisionSpan>& decisions() const { return decisions_; }
  /// The child spans of decision `request_id`, in attempt order.
  [[nodiscard]] std::vector<AttemptSpan> attempts_for(std::uint64_t request_id) const;
  void clear();

 private:
  std::vector<AttemptSpan> attempts_;
  std::vector<DecisionSpan> decisions_;
};

/// Streams spans as JSONL: one JSON object per span per line, tagged
/// {"span":"attempt"|"decision",...}. `out` must outlive the sink.
class JsonlSpanSink final : public SpanSink {
 public:
  explicit JsonlSpanSink(std::ostream& out);

  void on_attempt(const AttemptSpan& span) override;
  void on_decision(const DecisionSpan& span) override;

 private:
  std::ostream* out_;
};

/// The glue between AdmissionController and a SpanSink: assembles spans
/// attempt by attempt and emits them when finished. One tracer may serve
/// many controllers (the simulation shares one across all AC-routers);
/// requests are sequential within the DES, so one in-flight span suffices.
class DecisionTracer {
 public:
  /// Registers `sink` to receive spans (nullptr detaches). The sink must
  /// outlive the tracer or be detached first.
  void set_sink(SpanSink* sink) { sink_ = sink; }
  /// True when a sink is attached; controllers skip all collection work
  /// (including weight snapshots) when false.
  [[nodiscard]] bool active() const { return sink_ != nullptr; }

  /// Supplies the simulated-time source for span timestamps (the simulation
  /// installs its kernel clock; unset means every timestamp is 0).
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }

  // --- Called by AdmissionController (only when active()) ---
  void begin_request(std::uint64_t request_id, net::NodeId source,
                     net::Bandwidth bandwidth_bps, std::string algorithm,
                     std::size_t max_attempts, std::size_t group_size);
  /// Completes one attempt child span; `weights` is the selector's vector at
  /// selection time and `retries_remaining` the budget left after it.
  void record_attempt(std::size_t member_index, net::NodeId member_node,
                      std::vector<double> weights, std::size_t route_hops,
                      net::Bandwidth bottleneck_bps, bool admitted,
                      std::optional<net::LinkId> blocking_link, std::uint64_t messages,
                      std::uint64_t retransmits, std::size_t retries_remaining);
  void end_request(bool admitted, std::optional<std::size_t> destination_index,
                   std::uint64_t messages);

  /// Spans emitted over this tracer's lifetime (diagnostics).
  [[nodiscard]] std::uint64_t spans_emitted() const { return spans_emitted_; }

 private:
  [[nodiscard]] double now() const { return clock_ ? clock_() : 0.0; }

  SpanSink* sink_ = nullptr;
  std::function<double()> clock_;
  DecisionSpan current_;
  bool in_request_ = false;
  std::uint64_t next_span_id_ = 1;
  std::uint64_t spans_emitted_ = 0;
};

}  // namespace anyqos::obs
