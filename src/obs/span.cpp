#include "src/obs/span.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::obs {

namespace {

void write_number(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << "null";
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out << buffer;
}

}  // namespace

std::vector<AttemptSpan> MemorySpanSink::attempts_for(std::uint64_t request_id) const {
  std::vector<AttemptSpan> children;
  for (const AttemptSpan& span : attempts_) {
    if (span.request_id == request_id) {
      children.push_back(span);
    }
  }
  return children;
}

void MemorySpanSink::clear() {
  attempts_.clear();
  decisions_.clear();
}

JsonlSpanSink::JsonlSpanSink(std::ostream& out) : out_(&out) {}

void JsonlSpanSink::on_attempt(const AttemptSpan& span) {
  *out_ << "{\"span\":\"attempt\",\"request\":" << span.request_id
        << ",\"id\":" << span.span_id << ",\"attempt\":" << span.attempt_number
        << ",\"time\":";
  write_number(*out_, span.time);
  *out_ << ",\"member\":" << span.member_index << ",\"node\":" << span.member_node
        << ",\"weights\":[";
  for (std::size_t i = 0; i < span.weights.size(); ++i) {
    if (i > 0) {
      *out_ << ',';
    }
    write_number(*out_, span.weights[i]);
  }
  *out_ << "],\"hops\":" << span.route_hops << ",\"bottleneck_bps\":";
  write_number(*out_, span.bottleneck_bps);
  *out_ << ",\"admitted\":" << (span.admitted ? "true" : "false") << ",\"blocking_link\":";
  if (span.blocking_link.has_value()) {
    *out_ << *span.blocking_link;
  } else {
    *out_ << "null";
  }
  *out_ << ",\"messages\":" << span.messages << ",\"retransmits\":" << span.retransmits
        << ",\"retries_remaining\":" << span.retries_remaining << "}\n";
}

void JsonlSpanSink::on_decision(const DecisionSpan& span) {
  *out_ << "{\"span\":\"decision\",\"request\":" << span.request_id << ",\"time\":";
  write_number(*out_, span.start_time);
  *out_ << ",\"source\":" << span.source << ",\"bandwidth_bps\":";
  write_number(*out_, span.bandwidth_bps);
  *out_ << ",\"algorithm\":\"" << util::json_escape(span.algorithm)
        << "\",\"admitted\":" << (span.admitted ? "true" : "false") << ",\"destination\":";
  if (span.destination_index.has_value()) {
    *out_ << *span.destination_index;
  } else {
    *out_ << "null";
  }
  *out_ << ",\"attempts\":" << span.attempts << ",\"messages\":" << span.messages
        << ",\"max_attempts\":" << span.max_attempts << ",\"group_size\":" << span.group_size
        << "}\n";
}

void DecisionTracer::begin_request(std::uint64_t request_id, net::NodeId source,
                                   net::Bandwidth bandwidth_bps, std::string algorithm,
                                   std::size_t max_attempts, std::size_t group_size) {
  util::require(sink_ != nullptr, "tracer calls require an attached sink");
  util::require(!in_request_, "previous request span still open");
  in_request_ = true;
  current_ = DecisionSpan{};
  current_.request_id = request_id;
  current_.start_time = now();
  current_.source = source;
  current_.bandwidth_bps = bandwidth_bps;
  current_.algorithm = std::move(algorithm);
  current_.max_attempts = max_attempts;
  current_.group_size = group_size;
}

void DecisionTracer::record_attempt(std::size_t member_index, net::NodeId member_node,
                                    std::vector<double> weights, std::size_t route_hops,
                                    net::Bandwidth bottleneck_bps, bool admitted,
                                    std::optional<net::LinkId> blocking_link,
                                    std::uint64_t messages, std::uint64_t retransmits,
                                    std::size_t retries_remaining) {
  util::require(in_request_, "attempt span outside a request span");
  AttemptSpan span;
  span.request_id = current_.request_id;
  span.span_id = next_span_id_++;
  span.attempt_number = ++current_.attempts;
  span.time = now();
  span.member_index = member_index;
  span.member_node = member_node;
  span.weights = std::move(weights);
  span.route_hops = route_hops;
  span.bottleneck_bps = bottleneck_bps;
  span.admitted = admitted;
  span.blocking_link = blocking_link;
  span.messages = messages;
  span.retransmits = retransmits;
  span.retries_remaining = retries_remaining;
  sink_->on_attempt(span);
  ++spans_emitted_;
}

void DecisionTracer::end_request(bool admitted, std::optional<std::size_t> destination_index,
                                 std::uint64_t messages) {
  util::require(in_request_, "decision span closed twice");
  in_request_ = false;
  current_.admitted = admitted;
  current_.destination_index = destination_index;
  current_.messages = messages;
  sink_->on_decision(current_);
  ++spans_emitted_;
}

}  // namespace anyqos::obs
