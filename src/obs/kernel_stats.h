// Kernel telemetry sink (observability layer for the DES core).
//
// KernelStats implements des::KernelSink and, once attached to a Simulator,
// tallies every schedule / fire / cancel by event category: counts,
// virtual-clock scheduling-horizon and time-in-queue histograms, queue-depth
// high-water, same-timestamp burst lengths, and the tombstone ratio of the
// lazy-cancellation scheme. Everything is derived from the virtual clock
// only, so an attached run is byte-identical at equal seed, and the
// attach-gating contract holds: with no sink attached the kernel pays one
// null-pointer test per operation and every artifact stays byte-identical
// to a build without this plane engaged (DESIGN.md §15).
//
// This is the instrumentation behind the planned calendar-queue rewrite
// (ROADMAP "10× the DES kernel"): the horizon histogram sizes calendar
// buckets, the per-category populations say which timer wheels pay off, and
// the burst-length histogram bounds the FIFO tie-break cost.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/des/category.h"
#include "src/des/kernel_sink.h"
#include "src/obs/registry.h"

namespace anyqos::des {
class Simulator;
}

namespace anyqos::obs {

/// Per-category event telemetry collector; attach one per Simulator run.
class KernelStats final : public des::KernelSink {
 public:
  /// Fixed-bound bucket counts (Prometheus `le` semantics: a value lands in
  /// the first bucket whose upper bound is >= value; above the last bound is
  /// the implicit +Inf bucket at index n). Exact count and sum are kept
  /// alongside so the JSONL artifact is lossless. Storage is inline
  /// fixed-capacity (no heap vectors): observe() runs twice per simulated
  /// event when a sink is attached, and chasing two heap pointers per call
  /// is what the attached-overhead budget cannot afford. Unused bound slots
  /// are padded with +Inf so the rank loop is a fixed, branch-free 8
  /// compares regardless of n.
  struct BucketCounts {
    static constexpr std::size_t kMaxBounds = 8;

    std::array<double, kMaxBounds> upper{};             // [0, n) real, rest +Inf
    std::array<std::uint64_t, kMaxBounds + 1> counts{};  // [0, n] used, +Inf at n
    std::size_t n = 0;  // bounds in use
    double sum = 0.0;

    explicit BucketCounts(const std::vector<double>& bounds);
    void observe(double value);
    /// Total observations — derived from the buckets at read time so the
    /// hot path pays one increment, not two.
    [[nodiscard]] std::uint64_t total() const;
  };

  /// Tallies for one event category.
  struct CategoryStats {
    std::uint64_t scheduled = 0;
    std::uint64_t fired = 0;
    std::uint64_t cancelled = 0;
    BucketCounts horizon;  // due - now at schedule time (virtual seconds)
    BucketCounts wait;     // fire time - schedule time (virtual seconds)

    CategoryStats(const std::vector<double>& horizon_bounds,
                  const std::vector<double>& wait_bounds);
    /// scheduled - fired - cancelled: events still sitting in the queue.
    [[nodiscard]] std::uint64_t still_pending() const {
      return scheduled - fired - cancelled;
    }
  };

  KernelStats();

  /// Registers this sink on `simulator` and remembers it for category names
  /// and queue-level counters. Must run before the simulator's first
  /// schedule call — the sink keeps no per-event state (the queue carries
  /// category and schedule time through Fired), so its counters only
  /// reconcile when it sees every event from the start. One simulator per
  /// collector.
  void attach(des::Simulator& simulator);
  [[nodiscard]] bool attached() const { return simulator_ != nullptr; }

  // des::KernelSink
  void on_scheduled(des::EventCategory category, double now, double when) override;
  void on_fired(des::EventCategory category, double scheduled_at, double now) override;
  void on_cancelled(des::EventCategory category, double now) override;

  /// Per-category tallies indexed by category id; may be shorter than
  /// category_names() when late-interned categories never scheduled.
  [[nodiscard]] const std::vector<CategoryStats>& categories() const {
    return categories_;
  }
  /// Category names from the attached simulator (index = category id).
  [[nodiscard]] const std::vector<std::string>& category_names() const;

  [[nodiscard]] std::uint64_t total_scheduled() const;
  [[nodiscard]] std::uint64_t total_fired() const;
  [[nodiscard]] std::uint64_t total_cancelled() const;
  /// Events scheduled through this sink and not yet fired or cancelled.
  /// Read from the simulator (attach() requires an empty one, so its
  /// pending set and this sink's view coincide) — the hot path does not
  /// maintain a separate live counter.
  [[nodiscard]] std::size_t still_pending() const;
  /// Deepest the pending-event set got while attached (the simulator's
  /// unconditional peak counter; identical because attach() requires an
  /// empty simulator).
  [[nodiscard]] std::size_t queue_depth_high_water() const;
  /// Tombstoned heap entries the queue skipped (from the simulator).
  [[nodiscard]] std::uint64_t tombstones_popped() const;
  /// tombstones_popped / (tombstones_popped + fired): the fraction of heap
  /// pops that were cancellation garbage. 0 when nothing popped yet.
  [[nodiscard]] double tombstone_ratio() const;
  /// Lengths of maximal runs of events fired at identical timestamps,
  /// including the still-open run (the copy is finalized, the collector is
  /// not mutated).
  [[nodiscard]] BucketCounts burst_histogram() const;

  /// One JSON object per line, schema anyqos-kernel-stats/1: a header, one
  /// row per interned category (zeros included, so equal-seed runs are
  /// byte-identical), and a summary row carrying the queue-level counters.
  void write_jsonl(std::ostream& out) const;

  /// Exports into `registry`: anyqos_kernel_events_total{category,outcome},
  /// aggregate horizon / wait / burst histograms, and queue-level gauges.
  /// Histogram sums are replayed at bucket upper bounds (counts exact, sum
  /// approximate — the JSONL artifact keeps the exact sums).
  void export_to(MetricsRegistry& registry, const Labels& extra = {}) const;

 private:
  CategoryStats& stats_for(std::uint16_t category_id);

  des::Simulator* simulator_ = nullptr;
  std::vector<double> seconds_bounds_;  // horizon + wait bucket bounds
  std::vector<double> burst_bounds_;
  std::vector<CategoryStats> categories_;
  BucketCounts burst_;
  double last_fire_time_ = 0.0;
  std::uint64_t open_burst_ = 0;  // 0 until the first fire
};

}  // namespace anyqos::obs
