// Engine profiling hooks (observability layer 3).
//
// Measures how fast the DES kernel itself runs, independent of what the
// model computes: wall-clock phase timers (warm-up vs measurement vs
// whatever the caller brackets) and throughput samples taken at configurable
// simulated-time checkpoints — events/sec of wall time, pending-event queue
// depth, and active flows. The numbers seed the BENCH_* trajectory: every
// perf PR can quote events/sec before and after from the same hooks.
//
// Attachment mirrors audit::InvariantAuditor: a self-rescheduling checkpoint
// event on the kernel, installed before run(). Sampling reads existing
// kernel counters (dispatched events, queue size), so the simulation's
// virtual-time behaviour is untouched — the profiler only spends wall time.
#pragma once

#include <chrono>  // wall-clock throughput profiling; see ALLOW notes below
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/des/category.h"
#include "src/obs/registry.h"

namespace anyqos::des {
class Simulator;
}  // namespace anyqos::des

namespace anyqos::obs {

/// One throughput checkpoint.
struct ProfileSample {
  double sim_time_s = 0.0;            ///< virtual clock at the checkpoint
  double wall_seconds = 0.0;          ///< wall time since attach()
  std::uint64_t events_dispatched = 0;  ///< kernel lifetime dispatch count
  double events_per_second = 0.0;     ///< wall-clock rate since last sample
  std::size_t queue_depth = 0;        ///< pending events at the checkpoint
  std::size_t active_flows = 0;       ///< model population (0 if no source)
};

/// Aggregate over a profiled run.
struct ProfileSummary {
  double sim_time_s = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;           ///< dispatched since attach()
  double events_per_second = 0.0;     ///< events / wall_seconds
  double sim_seconds_per_wall_second = 0.0;
  std::size_t peak_queue_depth = 0;
  std::size_t peak_active_flows = 0;
  std::size_t checkpoints = 0;
};

/// Wall-clock phase timers plus DES throughput gauges. One instance profiles
/// one kernel run; construct fresh per simulation.
class EngineProfiler {
 public:
  /// `checkpoint_interval_s` is the simulated-seconds period of the
  /// self-rescheduling sample event attach() installs; <= 0 disables
  /// periodic samples (call sample() manually).
  explicit EngineProfiler(double checkpoint_interval_s = 100.0);

  /// Starts the wall clock, snapshots the kernel's dispatch baseline, and
  /// (when the interval is positive) installs the periodic checkpoint event.
  /// `active_flows` optionally supplies the model population per sample.
  /// Call before running the simulator; `simulator` must outlive this.
  void attach(des::Simulator& simulator, std::function<std::size_t()> active_flows = {});

  /// Takes one throughput sample now (requires a prior attach()).
  void sample();

  /// RAII wall-clock timer; accumulates into the named phase on destruction.
  class PhaseScope {
   public:
    PhaseScope(PhaseScope&& other) noexcept;
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;
    PhaseScope& operator=(PhaseScope&&) = delete;
    ~PhaseScope();

   private:
    friend class EngineProfiler;
    PhaseScope(EngineProfiler* profiler, std::size_t index);
    EngineProfiler* profiler_;
    std::size_t index_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Starts timing `name`; the returned scope adds its lifetime to the
  /// phase's accumulated seconds. Phases may repeat (times add up).
  [[nodiscard]] PhaseScope phase(const std::string& name);
  /// Accumulated wall seconds of `name` (0 when never timed).
  [[nodiscard]] double phase_seconds(const std::string& name) const;
  /// All phases in first-use order.
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& phases() const {
    return phases_;
  }

  [[nodiscard]] const std::vector<ProfileSample>& samples() const { return samples_; }
  /// Aggregate up to now (valid after attach()).
  [[nodiscard]] ProfileSummary summary() const;

  /// Registers the summary and phase timers as anyqos_engine_* gauges.
  void export_to(MetricsRegistry& registry) const;
  /// One JSON object: {"summary":{...},"phases":{...},"samples":[...]}.
  void write_json(std::ostream& out) const;

 private:
  void schedule_checkpoint();

  double checkpoint_interval_s_;
  des::Simulator* simulator_ = nullptr;
  des::EventCategory category_;  // "obs.profiler" kernel tag
  std::function<std::size_t()> active_flows_;
  std::chrono::steady_clock::time_point attach_wall_{};
  std::uint64_t baseline_events_ = 0;
  std::vector<ProfileSample> samples_;
  std::vector<std::pair<std::string, double>> phases_;
  std::size_t peak_queue_depth_ = 0;
  std::size_t peak_active_flows_ = 0;
};

}  // namespace anyqos::obs
