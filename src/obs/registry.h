// Unified metrics registry (observability layer 1).
//
// Typed counters, gauges, and histograms with labels, registered once and
// exported through two writers: a Prometheus-style text exposition and a
// JSONL snapshot (one series per line) for offline tooling. The registry is
// the single funnel every module reports through — simulation results,
// engine throughput, and signaling tallies all land here so one scrape or
// one file covers a run (see DESIGN.md "Observability").
//
// Series identity is (family name, sorted label set). Looking up the same
// identity twice returns the same instrument, so call sites can re-resolve
// cheaply instead of caching pointers. Families are type-stable: registering
// a name as a counter and later as a gauge throws.
//
// Threading contract (live ops plane, DESIGN.md §13): the registry is safe
// for concurrent scrape — one writer thread recording while other threads
// call write_prometheus / write_jsonl / the count accessors. A registry-
// level mutex guards the family/series maps (registration and iteration),
// counters and gauges are atomics, and each histogram serializes observe
// against its readers with its own mutex. Writers see internally consistent
// instruments; a scrape concurrent with recording is a point-in-time
// snapshot per instrument, not across instruments (a histogram's buckets,
// count, and sum are mutually consistent; two different series may straddle
// the scrape). Instrument references returned by counter()/gauge()/
// histogram() remain valid for the registry's lifetime and may be used from
// any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace anyqos::obs {

/// One label key=value pair attached to a series.
struct Label {
  std::string key;
  std::string value;
};

/// Label sets are sorted by key for identity; duplicate keys are rejected.
using Labels = std::vector<Label>;

/// Monotone event tally. Thread-safe: increments are atomic (relaxed — a
/// scrape needs a recent value, not a fence).
class Counter {
 public:
  void increment(std::uint64_t by = 1) { value_.fetch_add(by, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time measurement. Thread-safe: set/add/value are atomic (add is
/// a CAS loop — there is no hardware fetch-add for doubles to rely on).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram. A value lands in the first bucket whose upper
/// bound is >= value (Prometheus `le` semantics); values above the last
/// bound go to the implicit +Inf bucket. Thread-safe: observe and the
/// aggregate accessors serialize on an internal mutex so buckets, count,
/// and sum always read mutually consistent; bounds() is immutable and
/// lock-free.
class Histogram {
 public:
  /// `bounds` must be non-empty, NaN-free, and strictly increasing (an
  /// explicit +Inf last bound is allowed; the exposition writers merge it
  /// with the implicit +Inf bucket so it is never emitted twice).
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) { observe(value, 1); }
  /// Records `count` observations of `value` in one step (used when
  /// replaying pre-aggregated data such as a CountHistogram).
  void observe(double value, std::uint64_t count);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Observations in bucket `i` alone (not cumulative); index bounds().size()
  /// is the +Inf bucket.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  /// Observations with value <= bounds()[i] (cumulative, Prometheus-style);
  /// index bounds().size() equals count().
  [[nodiscard]] std::uint64_t cumulative_count(std::size_t i) const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;

  /// All aggregates read under one lock — what the exposition writers use,
  /// so one rendered series is internally consistent (bucket monotonicity,
  /// +Inf bucket == count) even while another thread observes.
  struct Snapshot {
    /// One entry per bound plus a final implicit +Inf entry, cumulative
    /// Prometheus-style; cumulative.back() always equals count.
    std::vector<std::uint64_t> cumulative;
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;

 private:
  std::vector<double> bounds_;  // immutable after construction
  mutable std::mutex mutex_;    // guards the three aggregates below
  std::vector<std::uint64_t> buckets_;  // bounds().size() + 1 (+Inf last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// The instrument types a family can hold.
enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

std::string to_string(MetricType type);

/// Registry of metric families; see the file comment for identity rules.
class MetricsRegistry {
 public:
  /// Resolves (registering on first use) the counter `name` with `labels`.
  Counter& counter(const std::string& name, const std::string& help, Labels labels = {});
  /// Resolves (registering on first use) the gauge `name` with `labels`.
  Gauge& gauge(const std::string& name, const std::string& help, Labels labels = {});
  /// Resolves the histogram `name` with `labels`. `bounds` applies on first
  /// registration of the series; later lookups must pass identical bounds.
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, Labels labels = {});

  /// Number of registered families.
  [[nodiscard]] std::size_t family_count() const;
  /// Number of label-distinct series under `name` (0 when unregistered) —
  /// the family's label cardinality.
  [[nodiscard]] std::size_t cardinality(const std::string& name) const;
  /// Series across all families.
  [[nodiscard]] std::size_t series_count() const;

  /// Prometheus text exposition (# HELP / # TYPE plus one line per series),
  /// families in name order, series in label order.
  void write_prometheus(std::ostream& out) const;
  /// One JSON object per series per line:
  ///   {"name":...,"type":...,"labels":{...},"value":...} for counter/gauge,
  ///   buckets/sum/count for histograms. Deterministic order, valid JSONL.
  void write_jsonl(std::ostream& out) const;

 private:
  struct Series {
    Labels labels;  // sorted by key
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    MetricType type = MetricType::kCounter;
    std::map<std::string, Series> series;  // keyed by canonical label text
  };

  Family& family_for(const std::string& name, const std::string& help, MetricType type);
  Series& series_for(Family& family, Labels labels);

  /// Guards families_ (map structure and iteration). Instrument values have
  /// their own synchronization — see the class comment.
  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

}  // namespace anyqos::obs
