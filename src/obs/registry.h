// Unified metrics registry (observability layer 1).
//
// Typed counters, gauges, and histograms with labels, registered once and
// exported through two writers: a Prometheus-style text exposition and a
// JSONL snapshot (one series per line) for offline tooling. The registry is
// the single funnel every module reports through — simulation results,
// engine throughput, and signaling tallies all land here so one scrape or
// one file covers a run (see DESIGN.md "Observability").
//
// Series identity is (family name, sorted label set). Looking up the same
// identity twice returns the same instrument, so call sites can re-resolve
// cheaply instead of caching pointers. Families are type-stable: registering
// a name as a counter and later as a gauge throws.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace anyqos::obs {

/// One label key=value pair attached to a series.
struct Label {
  std::string key;
  std::string value;
};

/// Label sets are sorted by key for identity; duplicate keys are rejected.
using Labels = std::vector<Label>;

/// Monotone event tally.
class Counter {
 public:
  void increment(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time measurement.
class Gauge {
 public:
  void set(double value) { value_ = value; }
  void add(double delta) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-boundary histogram. A value lands in the first bucket whose upper
/// bound is >= value (Prometheus `le` semantics); values above the last
/// bound go to the implicit +Inf bucket.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) { observe(value, 1); }
  /// Records `count` observations of `value` in one step (used when
  /// replaying pre-aggregated data such as a CountHistogram).
  void observe(double value, std::uint64_t count);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Observations in bucket `i` alone (not cumulative); index bounds().size()
  /// is the +Inf bucket.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  /// Observations with value <= bounds()[i] (cumulative, Prometheus-style);
  /// index bounds().size() equals count().
  [[nodiscard]] std::uint64_t cumulative_count(std::size_t i) const;
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;  // bounds().size() + 1 (+Inf last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// The instrument types a family can hold.
enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

std::string to_string(MetricType type);

/// Registry of metric families; see the file comment for identity rules.
class MetricsRegistry {
 public:
  /// Resolves (registering on first use) the counter `name` with `labels`.
  Counter& counter(const std::string& name, const std::string& help, Labels labels = {});
  /// Resolves (registering on first use) the gauge `name` with `labels`.
  Gauge& gauge(const std::string& name, const std::string& help, Labels labels = {});
  /// Resolves the histogram `name` with `labels`. `bounds` applies on first
  /// registration of the series; later lookups must pass identical bounds.
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, Labels labels = {});

  /// Number of registered families.
  [[nodiscard]] std::size_t family_count() const { return families_.size(); }
  /// Number of label-distinct series under `name` (0 when unregistered) —
  /// the family's label cardinality.
  [[nodiscard]] std::size_t cardinality(const std::string& name) const;
  /// Series across all families.
  [[nodiscard]] std::size_t series_count() const;

  /// Prometheus text exposition (# HELP / # TYPE plus one line per series),
  /// families in name order, series in label order.
  void write_prometheus(std::ostream& out) const;
  /// One JSON object per series per line:
  ///   {"name":...,"type":...,"labels":{...},"value":...} for counter/gauge,
  ///   buckets/sum/count for histograms. Deterministic order, valid JSONL.
  void write_jsonl(std::ostream& out) const;

 private:
  struct Series {
    Labels labels;  // sorted by key
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string help;
    MetricType type = MetricType::kCounter;
    std::map<std::string, Series> series;  // keyed by canonical label text
  };

  Family& family_for(const std::string& name, const std::string& help, MetricType type);
  Series& series_for(Family& family, Labels labels);

  std::map<std::string, Family> families_;
};

}  // namespace anyqos::obs
