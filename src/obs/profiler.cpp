#include "src/obs/profiler.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "src/des/simulator.h"
#include "src/util/annotations.h"
#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::obs {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  // The engine profiler is the one component whose job is wall time: it
  // reports real events/s throughput. Nothing it reads feeds model state.
  ANYQOS_DETLINT_ALLOW(wall_clock, "profiler measures real engine throughput");
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

void write_double(std::ostream& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out << buffer;
}

}  // namespace

EngineProfiler::EngineProfiler(double checkpoint_interval_s)
    : checkpoint_interval_s_(checkpoint_interval_s) {}

void EngineProfiler::attach(des::Simulator& simulator,
                            std::function<std::size_t()> active_flows) {
  util::require(simulator_ == nullptr, "profiler already attached");
  simulator_ = &simulator;
  category_ = simulator.category("obs.profiler");
  active_flows_ = std::move(active_flows);
  ANYQOS_DETLINT_ALLOW(wall_clock, "profiler measures real engine throughput");
  attach_wall_ = std::chrono::steady_clock::now();
  baseline_events_ = simulator.dispatched_events();
  if (checkpoint_interval_s_ > 0.0) {
    schedule_checkpoint();
  }
}

void EngineProfiler::schedule_checkpoint() {
  simulator_->schedule_in(checkpoint_interval_s_, category_, [this] {
    sample();
    schedule_checkpoint();
  });
}

void EngineProfiler::sample() {
  util::require(simulator_ != nullptr, "profiler must be attached before sampling");
  ProfileSample s;
  s.sim_time_s = simulator_->now();
  s.wall_seconds = seconds_since(attach_wall_);
  s.events_dispatched = simulator_->dispatched_events();
  const double prev_wall = samples_.empty() ? 0.0 : samples_.back().wall_seconds;
  const std::uint64_t prev_events =
      samples_.empty() ? baseline_events_ : samples_.back().events_dispatched;
  const double dt = s.wall_seconds - prev_wall;
  s.events_per_second =
      dt > 0.0 ? static_cast<double>(s.events_dispatched - prev_events) / dt : 0.0;
  s.queue_depth = simulator_->pending_events();
  s.active_flows = active_flows_ ? active_flows_() : 0;
  peak_queue_depth_ = std::max(peak_queue_depth_, s.queue_depth);
  peak_active_flows_ = std::max(peak_active_flows_, s.active_flows);
  samples_.push_back(std::move(s));
}

EngineProfiler::PhaseScope::PhaseScope(EngineProfiler* profiler, std::size_t index)
    : profiler_(profiler),
      index_(index),
      // ANYQOS_DETLINT_ALLOW(wall_clock, "phase timers report wall seconds")
      start_(std::chrono::steady_clock::now()) {}

EngineProfiler::PhaseScope::PhaseScope(PhaseScope&& other) noexcept
    : profiler_(other.profiler_), index_(other.index_), start_(other.start_) {
  other.profiler_ = nullptr;
}

EngineProfiler::PhaseScope::~PhaseScope() {
  if (profiler_ != nullptr) {
    profiler_->phases_[index_].second += seconds_since(start_);
  }
}

EngineProfiler::PhaseScope EngineProfiler::phase(const std::string& name) {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (phases_[i].first == name) {
      return PhaseScope(this, i);
    }
  }
  phases_.emplace_back(name, 0.0);
  return PhaseScope(this, phases_.size() - 1);
}

double EngineProfiler::phase_seconds(const std::string& name) const {
  for (const auto& [phase, seconds] : phases_) {
    if (phase == name) {
      return seconds;
    }
  }
  return 0.0;
}

ProfileSummary EngineProfiler::summary() const {
  util::require(simulator_ != nullptr, "profiler must be attached before summarizing");
  ProfileSummary s;
  s.sim_time_s = simulator_->now();
  s.wall_seconds = seconds_since(attach_wall_);
  s.events = simulator_->dispatched_events() - baseline_events_;
  if (s.wall_seconds > 0.0) {
    s.events_per_second = static_cast<double>(s.events) / s.wall_seconds;
    s.sim_seconds_per_wall_second = s.sim_time_s / s.wall_seconds;
  }
  // The kernel high-water mark catches spikes between checkpoints.
  s.peak_queue_depth = std::max(peak_queue_depth_, simulator_->peak_pending_events());
  s.peak_active_flows = peak_active_flows_;
  s.checkpoints = samples_.size();
  return s;
}

void EngineProfiler::export_to(MetricsRegistry& registry) const {
  const ProfileSummary s = summary();
  registry.gauge("anyqos_engine_events_total", "DES events dispatched since attach")
      .set(static_cast<double>(s.events));
  registry.gauge("anyqos_engine_events_per_second", "DES dispatch rate, events per wall second")
      .set(s.events_per_second);
  registry.gauge("anyqos_engine_wall_seconds", "Wall-clock seconds since attach")
      .set(s.wall_seconds);
  registry
      .gauge("anyqos_engine_sim_speedup",
             "Simulated seconds advanced per wall-clock second")
      .set(s.sim_seconds_per_wall_second);
  registry.gauge("anyqos_engine_peak_queue_depth", "Maximum pending-event queue depth")
      .set(static_cast<double>(s.peak_queue_depth));
  registry.gauge("anyqos_engine_peak_active_flows", "Maximum concurrently active flows")
      .set(static_cast<double>(s.peak_active_flows));
  for (const auto& [phase, seconds] : phases_) {
    registry
        .gauge("anyqos_engine_phase_seconds", "Wall-clock seconds spent per run phase",
               {{"phase", phase}})
        .set(seconds);
  }
}

void EngineProfiler::write_json(std::ostream& out) const {
  const ProfileSummary s = summary();
  out << "{\"summary\":{\"sim_time_s\":";
  write_double(out, s.sim_time_s);
  out << ",\"wall_seconds\":";
  write_double(out, s.wall_seconds);
  out << ",\"events\":" << s.events << ",\"events_per_second\":";
  write_double(out, s.events_per_second);
  out << ",\"sim_seconds_per_wall_second\":";
  write_double(out, s.sim_seconds_per_wall_second);
  out << ",\"peak_queue_depth\":" << s.peak_queue_depth
      << ",\"peak_active_flows\":" << s.peak_active_flows
      << ",\"checkpoints\":" << s.checkpoints << "},\"phases\":{";
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (i > 0) {
      out << ',';
    }
    out << '"' << util::json_escape(phases_[i].first) << "\":";
    write_double(out, phases_[i].second);
  }
  out << "},\"samples\":[";
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const ProfileSample& sample = samples_[i];
    if (i > 0) {
      out << ',';
    }
    out << "{\"sim_time_s\":";
    write_double(out, sample.sim_time_s);
    out << ",\"wall_seconds\":";
    write_double(out, sample.wall_seconds);
    out << ",\"events\":" << sample.events_dispatched << ",\"events_per_second\":";
    write_double(out, sample.events_per_second);
    out << ",\"queue_depth\":" << sample.queue_depth
        << ",\"active_flows\":" << sample.active_flows << '}';
  }
  out << "]}\n";
}

}  // namespace anyqos::obs
