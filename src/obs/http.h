// Minimal HTTP/1.1 message handling for the ops plane (observability layer).
//
// Just enough of RFC 9112 for a scrape-and-steer endpoint: a request-line +
// header-field parser and a response renderer, both pure functions over
// strings so they unit-test without a socket. obs::OpsServer owns the
// sockets and calls in here; nothing in this file performs I/O.
//
// Deliberate limits (the server closes the connection after one exchange):
// no chunked transfer coding, no continuation lines, no percent-decoding of
// the request target. Header names are lower-cased at parse time so lookup
// is case-insensitive per RFC 9110 §5.1.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace anyqos::obs {

/// One parsed request head (everything before the body).
struct HttpRequest {
  std::string method;   ///< e.g. "GET", "POST" (case-sensitive per spec)
  std::string target;   ///< origin-form target, e.g. "/metrics"
  std::string version;  ///< e.g. "HTTP/1.1"
  /// Header fields in arrival order; names lower-cased, values trimmed of
  /// optional whitespace.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;  ///< filled by the caller after reading Content-Length
};

/// Parses a request head — the request line plus header fields, i.e. the
/// bytes before (not including) the blank line. Accepts both CRLF and bare
/// LF line endings. Returns nullopt on any malformed line.
std::optional<HttpRequest> parse_request_head(std::string_view head);

/// First value of header `name` (ASCII case-insensitive); nullopt if absent.
std::optional<std::string_view> find_header(const HttpRequest& request,
                                            std::string_view name);

/// The request's Content-Length: 0 when the header is absent, nullopt when
/// present but not a plain non-negative integer.
std::optional<std::size_t> content_length(const HttpRequest& request);

/// Canonical reason phrase for the status codes the ops server emits
/// (unknown codes render as "Unknown").
std::string_view status_reason(int status);

/// Renders a complete HTTP/1.1 response with Content-Type, Content-Length,
/// and Connection: close headers.
std::string render_response(int status, std::string_view content_type,
                            std::string_view body);

}  // namespace anyqos::obs
