// Live ops plane: in-process HTTP listener (observability layer 3).
//
// A dependency-free HTTP/1.1 server — one accept thread, blocking sockets,
// nothing beyond POSIX — that exposes a running simulation:
//
//   GET  /metrics         Prometheus text exposition (published snapshot)
//   GET  /healthz         DES clock, wall-clock events/s, drain state
//   GET  /status          governor bound, open breakers, shed tokens
//   POST /control/<knob>  enqueue a runtime knob change (body = number)
//
// Threading contract (DESIGN.md §13): the accept thread never touches
// simulation state. GET serves documents the DES thread published earlier
// (publish() swaps whole strings under a mutex), and POST runs a
// caller-installed handler that only parses/validates and posts into a
// control::DirectiveMailbox — mutation happens later, on the DES thread,
// at an ops-poll boundary. The server therefore sits entirely outside the
// determinism contract's state: starting it changes no artifact byte.
//
// Wall-clock use is confined to (a) the accept loop's poll() timeout so
// stop() can interrupt a quiet listener and (b) the events/s rate in
// /healthz, which is a wall-clock quantity by definition. Both carry
// reasoned detlint waivers; nothing wall-clock-derived feeds back into the
// simulation.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "src/obs/http.h"

namespace anyqos::obs {

/// Listener configuration; the defaults bind an ephemeral loopback port.
struct OpsServerOptions {
  /// Dotted-quad address to bind; loopback by default — the ops plane is a
  /// local viewport, not a public service.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (read port()).
  std::uint16_t port = 0;
  /// Requests larger than this are rejected with 413.
  std::size_t max_request_bytes = 64 * 1024;
};

/// What a control handler decided: the HTTP status plus a JSON body.
struct ControlOutcome {
  int status = 200;
  std::string body;
};

/// The ops listener; see the file comment for the threading contract.
class OpsServer {
 public:
  /// Handles POST /control/<knob> on the accept thread. Must be pure
  /// validation plus a mailbox post — never touch simulation state here.
  using ControlHandler =
      std::function<ControlOutcome(const std::string& knob, const std::string& body)>;

  explicit OpsServer(OpsServerOptions options = {});
  /// Stops and joins the accept thread.
  ~OpsServer();

  OpsServer(const OpsServer&) = delete;
  OpsServer& operator=(const OpsServer&) = delete;

  /// Install the POST /control handler. Call before start().
  void set_control_handler(ControlHandler handler);

  /// Binds, listens, and spawns the accept thread. Throws on socket errors
  /// (e.g. the requested port is taken). Call at most once.
  void start();
  /// Signals the accept thread and joins it; idempotent.
  void stop();

  [[nodiscard]] bool running() const { return running_.load(); }
  /// The bound port (the kernel's choice when options.port was 0). Valid
  /// after start().
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Publishes (replaces) the document served for GET `path`. Thread-safe;
  /// the DES thread calls this at every ops poll.
  void publish(const std::string& path, std::string content_type, std::string body);
  /// Publishes /healthz from the DES clock and event count, deriving
  /// events/s from the wall time elapsed since the previous publish.
  void publish_health(double sim_now, std::uint64_t events_dispatched, bool draining);

  /// Requests answered so far (any status); for end-of-run summaries.
  [[nodiscard]] std::uint64_t requests_served() const { return requests_served_.load(); }

 private:
  struct Document {
    std::string content_type;
    std::string body;
  };

  void serve();                      // accept-thread main loop
  void handle_connection(int fd);    // one read-respond-close exchange
  std::string respond(const HttpRequest& request);

  OpsServerOptions options_;
  ControlHandler control_handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  mutable std::mutex documents_mutex_;
  std::map<std::string, Document> documents_;
  // /healthz rate state (DES thread only; guarded by documents_mutex_ is
  // unnecessary — publish_health is called from one thread).
  bool health_published_ = false;
  double last_health_wall_s_ = 0.0;
  std::uint64_t last_health_events_ = 0;
};

}  // namespace anyqos::obs
