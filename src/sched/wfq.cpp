#include "src/sched/wfq.h"

#include <algorithm>
#include <queue>

#include "src/util/require.h"

namespace anyqos::sched {

RateScheduler::RateScheduler(SchedulerKind kind, double link_rate_bps)
    : kind_(kind), link_rate_(link_rate_bps) {
  util::require(link_rate_bps > 0.0, "link rate must be positive");
}

FlowHandle RateScheduler::add_flow(double rate_bps) {
  util::require(rate_bps > 0.0, "flow rate must be positive");
  util::require(reserved_ + rate_bps <= link_rate_ * (1.0 + 1e-9),
                "reserved rates exceed the link rate");
  flow_rate_.push_back(rate_bps);
  reserved_ += rate_bps;
  return static_cast<FlowHandle>(flow_rate_.size() - 1);
}

void RateScheduler::enqueue(FlowHandle flow, double size_bits, double time) {
  util::require(flow < flow_rate_.size(), "unknown flow handle");
  util::require(size_bits > 0.0, "packet size must be positive");
  util::require(time >= last_arrival_, "arrival times must be non-decreasing");
  util::require(!drained_, "scheduler already drained");
  last_arrival_ = time;
  Packet packet;
  packet.flow = flow;
  packet.size_bits = size_bits;
  packet.arrival_time = time;
  packet.sequence = next_sequence_++;
  pending_.push_back(packet);
}

std::vector<Departure> RateScheduler::drain() {
  util::require(!drained_, "scheduler already drained");
  drained_ = true;
  std::vector<Departure> departures;
  if (pending_.empty()) {
    return departures;
  }
  departures.reserve(pending_.size());

  struct EarlierFinish {
    bool operator()(const Packet& a, const Packet& b) const {
      if (a.virtual_finish != b.virtual_finish) {
        return a.virtual_finish > b.virtual_finish;
      }
      return a.sequence > b.sequence;
    }
  };
  std::priority_queue<Packet, std::vector<Packet>, EarlierFinish> eligible;

  std::vector<double> last_finish(flow_rate_.size(), 0.0);
  std::size_t next_pending = 0;  // pending_ is already arrival-ordered
  double clock = 0.0;            // real time
  double virtual_time = 0.0;
  double virtual_updated_at = 0.0;
  bool busy = false;
  // dV/dt during busy periods; >= 1 because admission keeps reserved_ <= C.
  const double v_slope = reserved_ > 0.0 ? link_rate_ / reserved_ : 1.0;

  const auto admit_arrivals_up_to = [&](double now) {
    while (next_pending < pending_.size() &&
           pending_[next_pending].arrival_time <= now + 1e-15) {
      Packet packet = pending_[next_pending++];
      const double t = packet.arrival_time;
      double reference;
      if (kind_ == SchedulerKind::kVirtualClock) {
        reference = t;
      } else {
        if (busy || !eligible.empty()) {
          virtual_time += v_slope * (t - virtual_updated_at);
        } else {
          virtual_time = t;  // idle fluid system: V resynchronizes to real time
        }
        virtual_updated_at = t;
        reference = virtual_time;
      }
      const double start = std::max(reference, last_finish[packet.flow]);
      packet.virtual_finish = start + packet.size_bits / flow_rate_[packet.flow];
      last_finish[packet.flow] = packet.virtual_finish;
      eligible.push(packet);
    }
  };

  while (next_pending < pending_.size() || !eligible.empty()) {
    if (eligible.empty()) {
      // Idle: jump to the next arrival (work conservation).
      clock = std::max(clock, pending_[next_pending].arrival_time);
      busy = false;
    }
    admit_arrivals_up_to(clock);
    if (eligible.empty()) {
      continue;  // the jump above admits at least one next loop
    }
    const Packet packet = eligible.top();
    eligible.pop();
    busy = true;
    Departure departure;
    departure.packet = packet;
    departure.start_time = std::max(clock, packet.arrival_time);
    departure.finish_time = departure.start_time + packet.size_bits / link_rate_;
    clock = departure.finish_time;
    departures.push_back(departure);
    // Packets arriving during this transmission become eligible next pick.
    admit_arrivals_up_to(clock);
  }
  pending_.clear();
  return departures;
}

}  // namespace anyqos::sched
