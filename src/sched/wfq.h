// Packet-level rate-based schedulers: Weighted Fair Queueing and Virtual
// Clock (paper Section 6).
//
// The paper's delay extension rests on "networks with rate-based schedulers,
// such as weighted_fair_queue (WFQ), virtual clock (VC)", where a delay
// requirement maps to a bandwidth reservation. This module implements both
// schedulers at packet granularity so that mapping is *verified*, not
// assumed: tests drive reserved flows through a loaded server and check the
// observed worst-case delay against core::wfq_delay_bound, plus the fairness
// and work-conservation properties the guarantee rests on.
//
// Tagging laws (packet of length L from flow i with reserved rate r_i):
//   WFQ (PGPS):      F = max(V(arrival), F_prev_i) + L / r_i
//   Virtual Clock:   F = max(arrival,    F_prev_i) + L / r_i
// Packets transmit non-preemptively in tag order among those that have
// arrived. V(t) is the fluid virtual time; we use the standard engineering
// approximation dV/dt = C / sum(reserved rates) during packet-system busy
// periods and V := t at idle, which is conservative when sum(r_i) <= C (the
// admission-controlled regime this library operates in).
#pragma once

#include <cstdint>
#include <vector>

namespace anyqos::sched {

using FlowHandle = std::uint32_t;

/// One packet inside the scheduler.
struct Packet {
  FlowHandle flow = 0;
  double size_bits = 0.0;
  double arrival_time = 0.0;
  double virtual_finish = 0.0;  ///< scheduler tag (assigned at arrival replay)
  std::uint64_t sequence = 0;   ///< FIFO tie-break
};

/// A packet leaving the server.
struct Departure {
  Packet packet;
  double start_time = 0.0;   ///< transmission start
  double finish_time = 0.0;  ///< transmission end (departure)
  [[nodiscard]] double delay() const { return finish_time - packet.arrival_time; }
};

/// Which virtual-time law the scheduler uses.
enum class SchedulerKind {
  kWfq,           ///< PGPS virtual time (fluid-system clock)
  kVirtualClock,  ///< Zhang's Virtual Clock (real-time based tags)
};

/// A single outgoing link scheduled by WFQ or Virtual Clock.
///
/// Usage: register flows with reserved rates, enqueue timestamped packets
/// (arrival times non-decreasing per call order), then `drain()` once to
/// obtain every departure in transmission order.
class RateScheduler {
 public:
  /// `link_rate_bps` is the output capacity (> 0).
  RateScheduler(SchedulerKind kind, double link_rate_bps);

  /// Registers a flow with reserved rate `rate_bps` (> 0). The sum of
  /// reserved rates may not exceed the link rate (admission control's job).
  FlowHandle add_flow(double rate_bps);

  [[nodiscard]] double reserved_rate() const { return reserved_; }
  [[nodiscard]] double link_rate() const { return link_rate_; }

  /// Buffers a packet of `size_bits` from `flow` arriving at `time`.
  /// Arrival times must be non-decreasing.
  void enqueue(FlowHandle flow, double size_bits, double time);

  /// Replays arrivals and serves every packet; returns departures in
  /// transmission order. May be called once per scheduler instance.
  std::vector<Departure> drain();

  /// Packets buffered and not yet drained.
  [[nodiscard]] std::size_t backlog() const { return pending_.size(); }

 private:
  SchedulerKind kind_;
  double link_rate_;
  double reserved_ = 0.0;
  std::vector<double> flow_rate_;
  std::vector<Packet> pending_;
  std::uint64_t next_sequence_ = 0;
  double last_arrival_ = 0.0;
  bool drained_ = false;
};

}  // namespace anyqos::sched
