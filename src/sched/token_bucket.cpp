#include "src/sched/token_bucket.h"

#include <algorithm>

#include "src/util/require.h"

namespace anyqos::sched {

TokenBucket::TokenBucket(double rate_bps, double depth_bits)
    : rate_bps_(rate_bps), depth_bits_(depth_bits), tokens_(depth_bits) {
  util::require(rate_bps > 0.0, "token rate must be positive");
  util::require(depth_bits > 0.0, "bucket depth must be positive");
}

void TokenBucket::advance(double time) {
  util::require(time >= updated_at_, "token bucket queried backward in time");
  tokens_ = std::min(depth_bits_, tokens_ + rate_bps_ * (time - updated_at_));
  updated_at_ = time;
}

double TokenBucket::tokens_at(double time) const {
  util::require(time >= updated_at_, "token bucket queried backward in time");
  return std::min(depth_bits_, tokens_ + rate_bps_ * (time - updated_at_));
}

bool TokenBucket::conforms(double time, double size_bits) const {
  util::require(size_bits > 0.0, "packet size must be positive");
  return tokens_at(time) >= size_bits;
}

bool TokenBucket::police(double time, double size_bits) {
  util::require(size_bits > 0.0, "packet size must be positive");
  advance(time);
  if (tokens_ < size_bits) {
    return false;
  }
  tokens_ -= size_bits;
  return true;
}

double TokenBucket::shape(double time, double size_bits) {
  util::require(size_bits > 0.0, "packet size must be positive");
  util::require(size_bits <= depth_bits_,
                "packet exceeds the bucket depth and can never conform");
  advance(time);
  double release = time;
  if (tokens_ < size_bits) {
    release = time + (size_bits - tokens_) / rate_bps_;
    advance(release);
  }
  tokens_ -= size_bits;
  return release;
}

}  // namespace anyqos::sched
