// Token-bucket traffic regulation (the IntServ TSpec substrate).
//
// The WFQ delay bound that Section 6's delay->bandwidth mapping relies on
// holds for flows that *conform* to their reservation. In the Integrated
// Services architecture the paper's RSVP signaling belongs to, conformance is
// specified by a token bucket (rate r, depth b): a flow may send at most
// b + r*t bits over any interval of length t. This module provides the
// regulator: conformance checking for policing, and shaping (earliest
// conforming release time) for smoothing, both in continuous time.
#pragma once

namespace anyqos::sched {

/// A continuous-time token bucket.
///
/// Tokens accrue at `rate_bps` up to `depth_bits`; sending `n` bits consumes
/// `n` tokens. The bucket starts full. Query times must be non-decreasing.
class TokenBucket {
 public:
  /// rate_bps > 0, depth_bits > 0. A packet larger than the depth can never
  /// conform (conforms() is false and shape() rejects it).
  TokenBucket(double rate_bps, double depth_bits);

  [[nodiscard]] double rate() const { return rate_bps_; }
  [[nodiscard]] double depth() const { return depth_bits_; }

  /// Tokens available at `time` (without consuming anything).
  [[nodiscard]] double tokens_at(double time) const;

  /// True when a packet of `size_bits` conforms at `time` (policing view).
  /// Does not consume tokens.
  [[nodiscard]] bool conforms(double time, double size_bits) const;

  /// Polices a packet: if it conforms at `time`, consumes tokens and returns
  /// true; otherwise leaves state untouched and returns false (drop/mark).
  bool police(double time, double size_bits);

  /// Shapes a packet: returns the earliest instant >= `time` at which
  /// `size_bits` conform, consuming the tokens at that instant. Throws
  /// std::invalid_argument when size_bits exceeds the bucket depth.
  double shape(double time, double size_bits);

 private:
  void advance(double time);

  double rate_bps_;
  double depth_bits_;
  double tokens_;
  double updated_at_ = 0.0;
};

}  // namespace anyqos::sched
