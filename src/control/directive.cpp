#include "src/control/directive.h"

#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>

#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::control {

namespace {

// Round-trip rendering for log values: integers stay bare, everything else
// gets %.17g so load_ops_log parses back the exact double.
std::string render_log_number(double value) {
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return std::string(buffer);
}

// Extracts the value of `key` from one log line of the writer's fixed
// format. Values are either quoted strings or bare numbers; both end at
// the next ',' or '}'.
std::string_view extract_field(std::string_view line, std::string_view key,
                               std::size_t line_number) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const std::size_t at = line.find(needle);
  util::require(at != std::string_view::npos,
                "ops log line " + std::to_string(line_number) + " is missing \"" +
                    std::string(key) + "\"");
  std::string_view rest = line.substr(at + needle.size());
  if (!rest.empty() && rest.front() == '"') {
    rest.remove_prefix(1);
    const std::size_t end = rest.find('"');
    util::require(end != std::string_view::npos,
                  "ops log line " + std::to_string(line_number) + " has an unterminated string");
    return rest.substr(0, end);
  }
  const std::size_t end = rest.find_first_of(",}");
  util::require(end != std::string_view::npos,
                "ops log line " + std::to_string(line_number) + " is truncated");
  return rest.substr(0, end);
}

}  // namespace

std::string to_string(Knob knob) {
  switch (knob) {
    case Knob::kRetrialCeiling:
      return "retrial-ceiling";
    case Knob::kRetrialFloor:
      return "retrial-floor";
    case Knob::kShedBudget:
      return "shed-budget";
    case Knob::kShedBurst:
      return "shed-burst";
    case Knob::kBreakerThreshold:
      return "breaker-threshold";
    case Knob::kBreakerCooldown:
      return "breaker-cooldown";
  }
  util::unreachable("Knob");
}

std::optional<Knob> parse_knob(std::string_view name) {
  for (const Knob knob :
       {Knob::kRetrialCeiling, Knob::kRetrialFloor, Knob::kShedBudget, Knob::kShedBurst,
        Knob::kBreakerThreshold, Knob::kBreakerCooldown}) {
    if (name == to_string(knob)) {
      return knob;
    }
  }
  return std::nullopt;
}

std::optional<std::string> validate_directive(Knob knob, double value) {
  if (!std::isfinite(value)) {
    return "value must be finite";
  }
  switch (knob) {
    case Knob::kRetrialCeiling:
    case Knob::kRetrialFloor:
    case Knob::kBreakerThreshold:
      if (value < 1.0 || value != std::floor(value)) {
        return to_string(knob) + " must be an integer >= 1";
      }
      return std::nullopt;
    case Knob::kShedBudget:
    case Knob::kShedBurst:
      if (value < 0.0) {
        return to_string(knob) + " must be >= 0";
      }
      return std::nullopt;
    case Knob::kBreakerCooldown:
      if (value <= 0.0) {
        return to_string(knob) + " must be > 0";
      }
      return std::nullopt;
  }
  util::unreachable("Knob");
}

void DirectiveMailbox::post(const ControlDirective& directive) {
  const std::lock_guard<std::mutex> lock(mutex_);
  pending_.push_back(directive);
  ++posted_;
}

std::vector<ControlDirective> DirectiveMailbox::drain() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ControlDirective> taken;
  taken.swap(pending_);
  return taken;
}

std::uint64_t DirectiveMailbox::posted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return posted_;
}

void OpsLogWriter::record(double sim_time, const ControlDirective& directive,
                          double applied_value) {
  *out_ << "{\"ops\":\"directive\",\"t\":" << render_log_number(sim_time) << ",\"knob\":\""
        << to_string(directive.knob) << "\",\"value\":" << render_log_number(directive.value)
        << ",\"applied\":" << render_log_number(applied_value) << "}\n";
  ++entries_;
}

std::vector<TimedDirective> load_ops_log(std::istream& in) {
  std::vector<TimedDirective> directives;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (util::trim(line).empty()) {
      continue;
    }
    util::require(extract_field(line, "ops", line_number) == "directive",
                  "ops log line " + std::to_string(line_number) + " is not a directive");
    TimedDirective timed;
    const std::optional<double> t = util::parse_double(extract_field(line, "t", line_number));
    util::require(t.has_value(),
                  "ops log line " + std::to_string(line_number) + " has a bad time");
    timed.apply_at = *t;
    const std::optional<Knob> knob = parse_knob(extract_field(line, "knob", line_number));
    util::require(knob.has_value(),
                  "ops log line " + std::to_string(line_number) + " names an unknown knob");
    timed.directive.knob = *knob;
    const std::optional<double> value =
        util::parse_double(extract_field(line, "value", line_number));
    util::require(value.has_value(),
                  "ops log line " + std::to_string(line_number) + " has a bad value");
    timed.directive.value = *value;
    util::require(!validate_directive(timed.directive.knob, timed.directive.value).has_value(),
                  "ops log line " + std::to_string(line_number) + " fails validation");
    util::require(directives.empty() || directives.back().apply_at <= timed.apply_at,
                  "ops log times must be non-decreasing (line " +
                      std::to_string(line_number) + ")");
    directives.push_back(timed);
  }
  return directives;
}

}  // namespace anyqos::control
