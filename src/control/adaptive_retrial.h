// Retrial control driven by the overload governor's feedback loop.
//
// Drop-in for the paper's CounterRetrialPolicy: keep_going() enforces the
// governor's *effective* bound, which AIMD tightens toward a floor when
// the backbone runs hot and relaxes back toward the static ceiling R when
// it cools (see governor.h). max_attempts() deliberately reports the
// static ceiling, not the tightened bound: the auditor's attempts <= R
// invariant and the tracer's retries-remaining budget are sized against
// the most the loop could ever do, so a mid-request window flip can never
// read as a violation.
#pragma once

#include <string>

#include "src/core/retrial.h"

namespace anyqos::control {

class OverloadGovernor;

/// core::RetrialPolicy view over one governor; every AC-router controller
/// shares the same governor, so the bound adapts system-wide.
class AdaptiveRetrialPolicy final : public core::RetrialPolicy {
 public:
  /// `governor` must be bound already and outlive the policy.
  explicit AdaptiveRetrialPolicy(const OverloadGovernor& governor);

  [[nodiscard]] bool keep_going(std::size_t attempts_made) const override;
  /// The static ceiling R (never the tightened effective bound).
  [[nodiscard]] std::size_t max_attempts() const override;
  [[nodiscard]] std::string name() const override;

 private:
  const OverloadGovernor* governor_;
};

}  // namespace anyqos::control
