// Closed-loop overload protection (feedback control plane).
//
// The static <A, R> systems the paper evaluates pick their retrial bound R
// once, offline. Near saturation that mostly burns signaling: Figure 7
// shows msgs/request climbing steeply while admission probability
// collapses, because every rejection still walks up to R reservation
// attempts. The OverloadGovernor closes the loop from the telemetry the
// windowed timeline already observes — per-window rejection rate and
// per-link utilization high-water marks — back into admission behaviour,
// the way admission control can adapt from accept/reject feedback alone
// (Jaramillo & Ying) and anycast CDN frontends shed or redirect load when
// a member degrades. Three cooperating mechanisms behind one object:
//
//   1. Adaptive retrial bound (AIMD). Each window the governor classifies
//      the system hot (rejection rate and utilization high-water mark both
//      above their thresholds) or cool (rejection rate below its
//      threshold). Hot halves the effective bound toward a floor
//      (multiplicative decrease); cool raises it by one toward the static
//      ceiling R (additive increase); anything in between holds. The floor
//      defaults to 3 because the paper's own retrial data (Figures 3-4)
//      shows R: 1 -> 2 -> 3 carrying nearly all of the admission-
//      probability gain while attempts beyond 3 are almost pure signaling
//      at saturation; R = 1 additionally herds every source onto the same
//      member. control::AdaptiveRetrialPolicy reads the effective bound.
//
//   2. Per-member circuit breakers. Consecutive capacity failures against
//      one member, retransmit exhaustion (the resilient protocol gave up
//      without a definitive answer), or member churn trip that member's
//      breaker Open: the governor's MemberGate veto masks the member out
//      of selection (weight zeroed, renormalized over the rest). A DES
//      cooldown timer moves the breaker to HalfOpen, where real requests
//      probe the member; a probe success closes it, a failure re-opens it.
//
//   3. Source-side load shedding. An optional signaling budget — a token
//      bucket over PATH messages, reusing sched::TokenBucket — fast-
//      rejects requests with no reservation walk at all when exhausted.
//      Shed requests cost zero messages and are counted separately from
//      capacity rejections (SimulationResult::shed, outcome="shed").
//
// Wiring mirrors the Timeline/FlightRecorder pattern: sim::Simulation
// takes a nullable config pointer, bind()s the group size and retry
// ceiling at construction, and attach()es the window timer at run(). A
// null governor costs one pointer check per use and changes no artifact.
//
// Determinism contract: every input is model state observed in virtual
// time and every timer runs on the DES kernel, so two runs with the same
// seed and config behave byte-identically — governor included.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/core/admission.h"
#include "src/control/circuit_breaker.h"
#include "src/des/category.h"
#include "src/control/directive.h"
#include "src/sched/token_bucket.h"

namespace anyqos::des {
class Simulator;
}  // namespace anyqos::des

namespace anyqos::control {

/// Tuning knobs; the defaults engage adaptive retrial and breakers but not
/// shedding (an explicit budget is an operator decision).
struct GovernorOptions {
  /// Simulated seconds per feedback window; must be positive.
  double window_s = 50.0;

  // --- Mechanism 1: adaptive retrial bound ---
  bool adaptive_retrial = true;
  /// Floor the AIMD decrease clamps to (see the file comment for why 3);
  /// effectively min(min_tries, R). Must be at least 1.
  std::size_t min_tries = 3;
  /// A window is hot when BOTH the rejection rate and the utilization
  /// high-water mark reach their thresholds — rejection alone can spike on
  /// a cold cache, utilization alone is normal near full offered load.
  double hot_rejection_rate = 0.30;
  double hot_utilization = 0.90;
  /// A window is cool when the rejection rate falls to this or below.
  double cool_rejection_rate = 0.15;

  // --- Mechanism 2: per-member circuit breakers ---
  bool member_breakers = true;
  BreakerOptions breaker;

  // --- Mechanism 3: source-side load shedding ---
  /// Sustained PATH-message budget per second; 0 disables shedding.
  double shed_budget_msgs_per_s = 0.0;
  /// Bucket depth in messages; 0 derives 2 x budget (min 1).
  double shed_burst_msgs = 0.0;
};

/// Control-action tallies (whole run, warm-up included — control acts
/// during warm-up too, exactly like the breakers and the bucket).
struct GovernorStats {
  std::uint64_t windows = 0;         ///< feedback windows evaluated
  std::uint64_t tighten_steps = 0;   ///< multiplicative decreases applied
  std::uint64_t relax_steps = 0;     ///< additive increases applied
  std::uint64_t shed = 0;            ///< requests fast-rejected by the budget
  std::uint64_t breaker_trips = 0;   ///< transitions into Open (re-opens included)
  std::uint64_t breaker_probes = 0;  ///< HalfOpen attempts offered to members
  std::uint64_t breaker_closes = 0;  ///< probes that closed a breaker
};

/// The feedback control plane; see the file comment for the contract.
class OverloadGovernor final : public core::MemberGate {
 public:
  explicit OverloadGovernor(GovernorOptions options = {});

  /// Phase 1 of wiring (Simulation constructor): fixes the group size (one
  /// breaker per member) and the static retry ceiling R. Must be called
  /// exactly once, before any other input.
  void bind(std::size_t group_size, std::size_t max_tries);

  /// Phase 2 (Simulation::run()): installs the self-rescheduling window
  /// timer on the kernel. `stop_rearming` — when supplied — is consulted
  /// after each window; once true no further window event is parked, so a
  /// drain-to-quiescence run can empty its calendar. Breaker cooldown
  /// timers are one-shot and always fire: a drained run ends with every
  /// tripped breaker out of the Open state. `simulator` must outlive this.
  void attach(des::Simulator& simulator, std::function<bool()> stop_rearming = {});

  // --- Load shedding (consult before the reservation walk) ---
  /// True admits the request to the DAC walk; false means the signaling
  /// budget is exhausted — the caller fast-rejects with zero messages.
  /// Always true when no budget is configured.
  [[nodiscard]] bool admit_request(double now);

  // --- Feedback inputs ---
  /// One completed reservation walk: the outcome feeds the window's
  /// rejection rate and `path_messages` (PATH hop traversals the walk
  /// spent) draws down the signaling budget. The bucket never goes
  /// negative: a walk only pays what is left.
  void on_decision(double now, bool admitted, std::uint64_t path_messages);
  /// A link utilization observed on the hot path; feeds the window's
  /// high-water mark.
  void note_utilization(double utilization) {
    if (utilization > window_util_hwm_) {
      window_util_hwm_ = utilization;
    }
  }
  /// Churn took `member_index` down: trips its breaker immediately.
  void on_member_churn(std::size_t member_index);

  // --- core::MemberGate (the admission loop consults these) ---
  [[nodiscard]] bool allow_member(std::size_t member_index) override;
  void on_member_result(std::size_t member_index,
                        const signaling::ReservationResult& result) override;

  // --- Adaptive retrial bound ---
  /// The bound AdaptiveRetrialPolicy enforces right now, in
  /// [min(min_tries, R), R].
  [[nodiscard]] std::size_t effective_max_tries() const { return effective_tries_; }
  /// The static ceiling R (the auditor's attempts <= R invariant and span
  /// budgets are sized against this, never against the tightened bound).
  [[nodiscard]] std::size_t max_tries_ceiling() const { return max_tries_; }
  /// Evaluates one feedback window now (the AIMD step) and resets the
  /// window counters. Public so unit tests can drive windows without a
  /// kernel; the attached timer calls this every window_s.
  void advance_window();

  // --- Runtime control (the ops plane's seam; DES thread only) ---
  /// Applies one pre-validated directive (validate_directive must have
  /// passed — invalid values throw here) and returns the value actually
  /// applied after clamping:
  ///   retrial-ceiling    clamped to [1, R-at-bind] — the bind-time ceiling
  ///                      is the hard envelope the auditor and span budgets
  ///                      were sized against, so an operator can tighten or
  ///                      re-relax but never exceed it. The floor and the
  ///                      effective bound are re-clamped underneath it.
  ///   retrial-floor      clamped to [1, current ceiling]; the effective
  ///                      bound rises to the floor if it was below.
  ///   shed-budget        0 disengages the bucket; > 0 (re)builds it full
  ///                      at the new rate (deterministic: bucket state is a
  ///                      pure function of the directive and its DES time).
  ///   shed-burst         new depth; rebuilds an engaged bucket.
  ///   breaker-threshold  propagated to every member breaker (judges the
  ///                      streak going forward).
  ///   breaker-cooldown   read at the next trip's schedule time.
  /// Directives act regardless of which mechanisms the options enabled at
  /// construction — e.g. a shed-budget directive engages shedding on a
  /// governor built without it.
  double apply_directive(const ControlDirective& directive);

  // --- Views ---
  [[nodiscard]] bool bound() const { return bound_; }
  /// The floor the AIMD decrease clamps to, min(options.min_tries, R);
  /// retrial-floor directives move it.
  [[nodiscard]] std::size_t min_tries_floor() const { return floor_tries_; }
  /// True when the shed bucket is engaged (budget > 0 configured or
  /// directed at runtime).
  [[nodiscard]] bool shedding() const { return budget_.has_value(); }
  /// Tokens left in the shed bucket at `now`; requires shedding().
  [[nodiscard]] double shed_tokens(double now) const;
  [[nodiscard]] std::size_t open_breakers() const;
  [[nodiscard]] BreakerState breaker_state(std::size_t member_index) const;
  [[nodiscard]] const GovernorStats& stats() const { return stats_; }
  [[nodiscard]] const GovernorOptions& options() const { return options_; }

 private:
  void schedule_window();
  void trip_breaker(std::size_t member_index);
  void rebuild_shed_bucket();

  GovernorOptions options_;
  des::Simulator* simulator_ = nullptr;
  des::EventCategory cat_window_;   // "control.window" kernel tag
  des::EventCategory cat_breaker_;  // "control.breaker" kernel tag
  std::function<bool()> stop_rearming_;
  bool bound_ = false;
  std::size_t bind_tries_ = 1;       ///< R at bind: the hard retry envelope
  std::size_t max_tries_ = 1;        ///< current ceiling, <= bind_tries_
  std::size_t floor_tries_ = 1;      ///< min(options.min_tries, R)
  std::size_t effective_tries_ = 1;  ///< current adaptive bound
  // Window accumulators (reset by advance_window).
  std::uint64_t window_offered_ = 0;
  std::uint64_t window_rejected_ = 0;
  double window_util_hwm_ = 0.0;
  std::vector<CircuitBreaker> breakers_;  // one per group member
  /// Trip generation per member: a cooldown timer captures the generation
  /// it was scheduled for and goes stale when a newer trip supersedes it.
  std::vector<std::uint64_t> breaker_generation_;
  std::optional<sched::TokenBucket> budget_;  // engaged iff shedding configured
  GovernorStats stats_;
};

}  // namespace anyqos::control
