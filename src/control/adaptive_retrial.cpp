#include "src/control/adaptive_retrial.h"

#include "src/control/governor.h"
#include "src/util/require.h"

namespace anyqos::control {

AdaptiveRetrialPolicy::AdaptiveRetrialPolicy(const OverloadGovernor& governor)
    : governor_(&governor) {
  util::require(governor.bound(), "bind() the governor before building its retrial policy");
}

bool AdaptiveRetrialPolicy::keep_going(std::size_t attempts_made) const {
  return attempts_made < governor_->effective_max_tries();
}

std::size_t AdaptiveRetrialPolicy::max_attempts() const {
  return governor_->max_tries_ceiling();
}

std::string AdaptiveRetrialPolicy::name() const {
  return "adaptive(R<=" + std::to_string(governor_->max_tries_ceiling()) + ")";
}

}  // namespace anyqos::control
