// Per-member circuit breaker (overload-protection extension).
//
// The anycast-CDN load-management practice: when one frontend degrades,
// stop routing to it instead of letting every request pay for the failure.
// Here a breaker guards one anycast group member. It is a pure state
// machine — Closed / Open / HalfOpen — with no clock of its own: the owner
// (control::OverloadGovernor) schedules the Open -> HalfOpen cooldown on
// the DES kernel and calls half_open() when the timer fires, so breaker
// behaviour is deterministic in virtual time.
//
//   Closed   --(failure_threshold consecutive failures, or trip())-->  Open
//   Open     --(cooldown timer)-->                                     HalfOpen
//   HalfOpen --(probe success)-->  Closed
//   HalfOpen --(probe failure)-->  Open (again; a fresh cooldown starts)
//
// While Open the member is excluded from destination selection entirely —
// its weight is masked to zero and the selector renormalizes over the
// remaining members. HalfOpen admits probe attempts: real requests that
// test whether the member recovered.
#pragma once

#include <cstdint>
#include <string>

namespace anyqos::control {

/// Where a breaker stands; see the file comment for the transitions.
enum class BreakerState : std::uint8_t {
  kClosed,    ///< member in normal service
  kOpen,      ///< member excluded from selection (cooldown pending)
  kHalfOpen,  ///< cooldown elapsed; probe attempts allowed
};

std::string to_string(BreakerState state);

/// Tuning knobs for one breaker (shared by every member's breaker).
struct BreakerOptions {
  /// Consecutive reservation failures against the member that trip the
  /// breaker; must be at least 1. Retransmit exhaustion and member churn
  /// trip immediately regardless of this threshold.
  std::size_t failure_threshold = 5;
  /// Simulated seconds a tripped breaker stays Open before the owner's
  /// cooldown timer moves it to HalfOpen; must be positive.
  double cooldown_s = 60.0;
};

/// One member's breaker; see the file comment for the contract.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerOptions options = {});

  [[nodiscard]] BreakerState state() const { return state_; }
  /// True when the member may be offered an attempt (Closed or HalfOpen).
  [[nodiscard]] bool allows() const { return state_ != BreakerState::kOpen; }
  [[nodiscard]] std::size_t consecutive_failures() const { return consecutive_failures_; }

  /// A reservation against the member succeeded. Closes a HalfOpen breaker
  /// (the probe passed) and resets the failure streak. Returns true when
  /// this call closed the breaker.
  bool record_success();

  /// A reservation against the member failed on capacity. In Closed state
  /// the failure streak advances and trips at the threshold; in HalfOpen
  /// the probe failed and the breaker re-opens immediately. Returns true
  /// when this call tripped the breaker — the owner must then schedule the
  /// cooldown timer.
  [[nodiscard]] bool record_failure();

  /// Force the breaker Open (retransmit exhaustion, member churn). Returns
  /// true when the state changed (the owner schedules the cooldown); false
  /// when the breaker was already Open.
  [[nodiscard]] bool trip();

  /// Cooldown elapsed: Open -> HalfOpen. Called by the owner's DES timer;
  /// no-op unless currently Open (a stale timer must not resurrect state).
  void half_open();

  /// Replaces the tuning knobs at runtime (ops-plane directive). The new
  /// threshold judges the streak going forward: a streak already at or past
  /// a lowered threshold trips on the next failure, not retroactively. The
  /// owner reads cooldown_s at schedule time, so a new cooldown applies to
  /// trips after this call.
  void set_options(const BreakerOptions& options);

 private:
  BreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t consecutive_failures_ = 0;
};

}  // namespace anyqos::control
