// Typed runtime-control directives for the live ops plane.
//
// The ops server's POST /control/<knob> handler never mutates simulation
// state from the HTTP thread. It parses the knob name, validates the value
// (both pure functions here), and posts a ControlDirective into a
// DirectiveMailbox. sim::Simulation drains that mailbox on the DES thread
// at ops-poll boundaries and applies each directive through
// control::OverloadGovernor::apply_directive, appending the applied
// directive to an ops JSONL log stamped with the DES time of application.
//
// That log is the replay contract (DESIGN.md §13): load_ops_log() turns it
// back into TimedDirectives which a serverless re-run injects at the same
// poll boundaries, reproducing the steered run byte-identically — the
// determinism contract (§12) survives live steering because wall-clock
// arrival order is erased at the mailbox and only virtual application time
// is recorded.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace anyqos::control {

/// The governor knobs addressable at runtime; each maps 1:1 to a
/// POST /control/<name> endpoint (names from to_string below).
enum class Knob : std::uint8_t {
  kRetrialCeiling,    ///< operator ceiling on the adaptive retrial bound
  kRetrialFloor,      ///< floor the AIMD decrease clamps to
  kShedBudget,        ///< PATH-message budget per second (0 disables)
  kShedBurst,         ///< shed bucket depth in messages (0 derives 2x budget)
  kBreakerThreshold,  ///< consecutive failures that trip a member breaker
  kBreakerCooldown,   ///< seconds a tripped breaker stays Open
};

/// The knob's wire name ("retrial-ceiling", "shed-budget", ...).
std::string to_string(Knob knob);
/// Inverse of to_string; nullopt for an unknown name (HTTP 404).
std::optional<Knob> parse_knob(std::string_view name);

/// One requested knob change. The governor may clamp the value when
/// applying it; the ops log records both requested and applied values.
struct ControlDirective {
  Knob knob = Knob::kRetrialCeiling;
  double value = 0.0;
};

/// Validates a directive without consulting governor state: finiteness and
/// per-knob domain (integer >= 1 for the retrial bounds and breaker
/// threshold, >= 0 for the shed knobs, > 0 for the cooldown). Returns an
/// error message (HTTP 422) or nullopt when the directive is applicable.
std::optional<std::string> validate_directive(Knob knob, double value);

/// A directive pinned to its DES application time — one parsed ops-log
/// entry, replayed at the same virtual time it originally applied.
struct TimedDirective {
  double apply_at = 0.0;
  ControlDirective directive;
};

/// Thread-safe FIFO between the HTTP accept thread (post) and the DES
/// thread (drain). This is the ONLY structure the two threads share on the
/// control path; everything downstream of drain() is single-threaded.
class DirectiveMailbox {
 public:
  /// Enqueues a validated directive (any thread).
  void post(const ControlDirective& directive);
  /// Takes all pending directives in post order (DES thread).
  [[nodiscard]] std::vector<ControlDirective> drain();
  /// Directives posted over the mailbox's lifetime.
  [[nodiscard]] std::uint64_t posted() const;

 private:
  mutable std::mutex mutex_;
  std::vector<ControlDirective> pending_;
  std::uint64_t posted_ = 0;
};

/// Appends applied directives as JSONL, one object per line:
///   {"ops":"directive","t":<DES seconds>,"knob":"<name>",
///    "value":<requested>,"applied":<after clamping>}
/// Times and values render with round-trip precision so a replayed run
/// parses back the exact doubles it logged.
class OpsLogWriter {
 public:
  /// `out` must outlive the writer; the caller owns flushing/closing.
  explicit OpsLogWriter(std::ostream& out) : out_(&out) {}

  void record(double sim_time, const ControlDirective& directive, double applied_value);
  [[nodiscard]] std::uint64_t entries() const { return entries_; }

 private:
  std::ostream* out_;
  std::uint64_t entries_ = 0;
};

/// Parses an ops log back into replayable directives (ascending apply_at —
/// the writer only ever appends at non-decreasing DES times, and replay
/// relies on that order). Throws on malformed lines or out-of-order times.
std::vector<TimedDirective> load_ops_log(std::istream& in);

}  // namespace anyqos::control
