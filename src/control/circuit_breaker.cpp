#include "src/control/circuit_breaker.h"

#include "src/util/require.h"

namespace anyqos::control {

std::string to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  util::unreachable("BreakerState");
}

CircuitBreaker::CircuitBreaker(BreakerOptions options) : options_(options) {
  util::require(options.failure_threshold >= 1, "breaker failure threshold must be at least 1");
  util::require(options.cooldown_s > 0.0, "breaker cooldown must be positive");
}

bool CircuitBreaker::record_success() {
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    state_ = BreakerState::kClosed;
    return true;
  }
  return false;
}

bool CircuitBreaker::record_failure() {
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: back to Open without waiting for a fresh streak.
    state_ = BreakerState::kOpen;
    consecutive_failures_ = 0;
    return true;
  }
  if (state_ == BreakerState::kOpen) {
    return false;  // already excluded; nothing to trip
  }
  ++consecutive_failures_;
  if (consecutive_failures_ >= options_.failure_threshold) {
    state_ = BreakerState::kOpen;
    consecutive_failures_ = 0;
    return true;
  }
  return false;
}

bool CircuitBreaker::trip() {
  if (state_ == BreakerState::kOpen) {
    return false;
  }
  state_ = BreakerState::kOpen;
  consecutive_failures_ = 0;
  return true;
}

void CircuitBreaker::half_open() {
  if (state_ == BreakerState::kOpen) {
    state_ = BreakerState::kHalfOpen;
  }
}

void CircuitBreaker::set_options(const BreakerOptions& options) {
  util::require(options.failure_threshold >= 1, "breaker failure threshold must be at least 1");
  util::require(options.cooldown_s > 0.0, "breaker cooldown must be positive");
  options_ = options;
}

}  // namespace anyqos::control
