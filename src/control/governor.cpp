#include "src/control/governor.h"

#include <algorithm>

#include "src/des/simulator.h"
#include "src/util/require.h"

namespace anyqos::control {

OverloadGovernor::OverloadGovernor(GovernorOptions options) : options_(options) {
  util::require(options.window_s > 0.0, "governor window must be positive");
  util::require(options.min_tries >= 1, "adaptive retrial floor must be at least 1");
  util::require(options.hot_rejection_rate > 0.0 && options.hot_rejection_rate <= 1.0,
                "hot rejection-rate threshold must be in (0, 1]");
  util::require(options.hot_utilization > 0.0 && options.hot_utilization <= 1.0,
                "hot utilization threshold must be in (0, 1]");
  util::require(options.cool_rejection_rate >= 0.0 &&
                    options.cool_rejection_rate < options.hot_rejection_rate,
                "cool rejection-rate threshold must be below the hot one");
  util::require(options.shed_budget_msgs_per_s >= 0.0,
                "signaling budget must be non-negative");
  util::require(options.shed_burst_msgs >= 0.0, "signaling burst must be non-negative");
}

void OverloadGovernor::bind(std::size_t group_size, std::size_t max_tries) {
  util::require(!bound_, "governor already bound; construct a fresh one per run");
  util::require(group_size >= 1, "governor needs a non-empty group");
  util::require(max_tries >= 1, "retry ceiling R must be at least 1");
  bound_ = true;
  bind_tries_ = max_tries;
  max_tries_ = max_tries;
  floor_tries_ = std::min(options_.min_tries, max_tries);
  effective_tries_ = max_tries;  // start wide open; the loop tightens from evidence
  breakers_.assign(group_size, CircuitBreaker(options_.breaker));
  breaker_generation_.assign(group_size, 0);
  rebuild_shed_bucket();
}

void OverloadGovernor::rebuild_shed_bucket() {
  if (options_.shed_budget_msgs_per_s > 0.0) {
    const double depth = options_.shed_burst_msgs > 0.0
                             ? options_.shed_burst_msgs
                             : std::max(1.0, 2.0 * options_.shed_budget_msgs_per_s);
    budget_.emplace(options_.shed_budget_msgs_per_s, depth);
  } else {
    budget_.reset();
  }
}

void OverloadGovernor::attach(des::Simulator& simulator, std::function<bool()> stop_rearming) {
  util::require(bound_, "bind() the governor before attaching it");
  util::require(simulator_ == nullptr, "governor already attached");
  simulator_ = &simulator;
  cat_window_ = simulator.category("control.window");
  cat_breaker_ = simulator.category("control.breaker");
  stop_rearming_ = std::move(stop_rearming);
  schedule_window();
}

void OverloadGovernor::schedule_window() {
  simulator_->schedule_in(options_.window_s, cat_window_, [this] {
    advance_window();
    if (!stop_rearming_ || !stop_rearming_()) {
      schedule_window();
    }
  });
}

void OverloadGovernor::advance_window() {
  util::require(bound_, "bind() the governor before driving windows");
  ++stats_.windows;
  if (options_.adaptive_retrial && window_offered_ > 0) {
    const double rejection =
        static_cast<double>(window_rejected_) / static_cast<double>(window_offered_);
    // Hot needs both signals: rejections alone can spike while the backbone
    // is idle (churned members, cold history), and a high-water mark alone
    // is normal whenever offered load brushes a bottleneck.
    const bool hot = rejection >= options_.hot_rejection_rate &&
                     window_util_hwm_ >= options_.hot_utilization;
    const bool cool = rejection <= options_.cool_rejection_rate;
    if (hot && effective_tries_ > floor_tries_) {
      effective_tries_ = std::max(floor_tries_, effective_tries_ / 2);
      ++stats_.tighten_steps;
    } else if (cool && effective_tries_ < max_tries_) {
      ++effective_tries_;
      ++stats_.relax_steps;
    }
  }
  window_offered_ = 0;
  window_rejected_ = 0;
  window_util_hwm_ = 0.0;
}

double OverloadGovernor::apply_directive(const ControlDirective& directive) {
  util::require(bound_, "bind() the governor before applying directives");
  const std::optional<std::string> error = validate_directive(directive.knob, directive.value);
  util::require(!error.has_value(), "invalid control directive: " + error.value_or(""));
  switch (directive.knob) {
    case Knob::kRetrialCeiling: {
      const auto requested = static_cast<std::size_t>(directive.value);
      max_tries_ = std::clamp<std::size_t>(requested, 1, bind_tries_);
      floor_tries_ = std::min(floor_tries_, max_tries_);
      options_.min_tries = floor_tries_;
      effective_tries_ = std::clamp(effective_tries_, floor_tries_, max_tries_);
      return static_cast<double>(max_tries_);
    }
    case Knob::kRetrialFloor: {
      const auto requested = static_cast<std::size_t>(directive.value);
      floor_tries_ = std::clamp<std::size_t>(requested, 1, max_tries_);
      options_.min_tries = floor_tries_;
      effective_tries_ = std::max(effective_tries_, floor_tries_);
      return static_cast<double>(floor_tries_);
    }
    case Knob::kShedBudget:
      options_.shed_budget_msgs_per_s = directive.value;
      rebuild_shed_bucket();
      return directive.value;
    case Knob::kShedBurst:
      options_.shed_burst_msgs = directive.value;
      rebuild_shed_bucket();
      return directive.value;
    case Knob::kBreakerThreshold:
      options_.breaker.failure_threshold = static_cast<std::size_t>(directive.value);
      for (CircuitBreaker& breaker : breakers_) {
        breaker.set_options(options_.breaker);
      }
      return static_cast<double>(options_.breaker.failure_threshold);
    case Knob::kBreakerCooldown:
      // trip_breaker reads options_.breaker.cooldown_s at schedule time, so
      // the new cooldown governs every trip after this directive.
      options_.breaker.cooldown_s = directive.value;
      return directive.value;
  }
  util::unreachable("Knob");
}

double OverloadGovernor::shed_tokens(double now) const {
  util::require(budget_.has_value(), "shed_tokens requires an engaged budget");
  return budget_->tokens_at(now);
}

bool OverloadGovernor::admit_request(double now) {
  if (!budget_.has_value()) {
    return true;
  }
  // One message of headroom admits the walk; the walk then pays only what
  // is left (the bucket floors at zero, it never goes into debt).
  if (budget_->tokens_at(now) >= 1.0) {
    return true;
  }
  ++stats_.shed;
  return false;
}

void OverloadGovernor::on_decision(double now, bool admitted, std::uint64_t path_messages) {
  ++window_offered_;
  if (!admitted) {
    ++window_rejected_;
  }
  if (budget_.has_value()) {
    for (std::uint64_t paid = 0; paid < path_messages; ++paid) {
      if (!budget_->police(now, 1.0)) {
        break;  // budget floor reached; the remainder of this walk is free
      }
    }
  }
}

void OverloadGovernor::on_member_churn(std::size_t member_index) {
  util::require(member_index < breakers_.size(), "churn for a member outside the group");
  if (!options_.member_breakers) {
    return;
  }
  if (breakers_[member_index].trip()) {
    trip_breaker(member_index);
  }
}

bool OverloadGovernor::allow_member(std::size_t member_index) {
  return breakers_[member_index].allows();
}

void OverloadGovernor::on_member_result(std::size_t member_index,
                                        const signaling::ReservationResult& result) {
  CircuitBreaker& breaker = breakers_[member_index];
  if (breaker.state() == BreakerState::kHalfOpen) {
    ++stats_.breaker_probes;
  }
  if (result.admitted) {
    if (breaker.record_success()) {
      ++stats_.breaker_closes;
    }
    return;
  }
  // A rejection that names no blocking link never got a definitive answer —
  // the resilient protocol exhausted its retransmit budget against this
  // member (the fault-free walk always names the blocking hop). That trips
  // immediately; an ordinary capacity block only advances the streak.
  const bool gave_up = !result.blocking_link.has_value();
  const bool tripped = gave_up ? breaker.trip() : breaker.record_failure();
  if (tripped) {
    trip_breaker(member_index);
  }
}

void OverloadGovernor::trip_breaker(std::size_t member_index) {
  ++stats_.breaker_trips;
  // Cooldown timers are one-shot and never consult stop_rearming: they must
  // fire even during a drain so no breaker is left Open at quiescence. The
  // generation guard keeps a stale timer (superseded by a newer trip) from
  // ending a cooldown early.
  const std::uint64_t generation = ++breaker_generation_[member_index];
  if (simulator_ != nullptr) {
    simulator_->schedule_in(options_.breaker.cooldown_s, cat_breaker_,
                            [this, member_index, generation] {
      if (breaker_generation_[member_index] == generation) {
        breakers_[member_index].half_open();
      }
    });
  }
}

std::size_t OverloadGovernor::open_breakers() const {
  return static_cast<std::size_t>(
      std::count_if(breakers_.begin(), breakers_.end(), [](const CircuitBreaker& breaker) {
        return breaker.state() == BreakerState::kOpen;
      }));
}

BreakerState OverloadGovernor::breaker_state(std::size_t member_index) const {
  util::require(member_index < breakers_.size(), "breaker index outside the group");
  return breakers_[member_index].state();
}

}  // namespace anyqos::control
