#include "src/sim/trace.h"

#include <algorithm>
#include <ostream>

#include "src/util/require.h"

namespace anyqos::sim {

std::string to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kAdmitted:
      return "ADMITTED";
    case TraceEventKind::kRejected:
      return "REJECTED";
    case TraceEventKind::kDeparted:
      return "DEPARTED";
    case TraceEventKind::kDropped:
      return "DROPPED";
    case TraceEventKind::kLinkDown:
      return "LINK_DOWN";
    case TraceEventKind::kLinkUp:
      return "LINK_UP";
    case TraceEventKind::kMemberDown:
      return "MEMBER_DOWN";
    case TraceEventKind::kMemberUp:
      return "MEMBER_UP";
    case TraceEventKind::kFailover:
      return "FAILOVER";
    case TraceEventKind::kShed:
      return "SHED";
    case TraceEventKind::kNodeDown:
      return "NODE_DOWN";
    case TraceEventKind::kNodeUp:
      return "NODE_UP";
    case TraceEventKind::kReconverged:
      return "RECONVERGED";
    case TraceEventKind::kRepaired:
      return "REPAIRED";
    case TraceEventKind::kRepairFailed:
      return "REPAIR_FAILED";
  }
  util::unreachable("TraceEventKind");
}

std::size_t MemoryTraceSink::count(TraceEventKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(events_.begin(), events_.end(),
                    [kind](const TraceEvent& e) { return e.kind == kind; }));
}

CsvTraceSink::CsvTraceSink(std::ostream& out) : out_(&out) {
  *out_ << "time,kind,flow,source,destination,attempts,bandwidth_bps,active\n";
}

void CsvTraceSink::record(const TraceEvent& event) {
  *out_ << event.time << ',' << to_string(event.kind) << ',';
  if (event.flow == 0) {
    *out_ << '-';  // link events carry no request id
  } else {
    *out_ << event.flow;
  }
  *out_ << ',';
  if (event.source == net::kInvalidNode) {
    *out_ << '-';
  } else {
    *out_ << event.source;
  }
  *out_ << ',';
  if (event.destination == net::kInvalidNode) {
    *out_ << '-';
  } else {
    *out_ << event.destination;
  }
  *out_ << ',' << event.attempts << ',' << event.bandwidth_bps << ',' << event.active_flows
        << '\n';
}

}  // namespace anyqos::sim
