#include "src/sim/timeseries.h"

#include "src/util/require.h"

namespace anyqos::sim {

TimeSeriesProbe::TimeSeriesProbe(des::Simulator& simulator, double start, double period)
    : simulator_(&simulator),
      category_(simulator.category("obs.timeseries")),
      start_(start),
      period_(period) {
  util::require(period > 0.0, "sampling period must be positive");
  util::require(start >= simulator.now(), "sampling cannot start in the past");
}

void TimeSeriesProbe::add_gauge(std::string name, Gauge gauge) {
  util::require(!armed_, "gauges must be registered before arming");
  util::require(static_cast<bool>(gauge), "gauge must be callable");
  gauges_.push_back(std::move(gauge));
  TimeSeries ts;
  ts.name = std::move(name);
  series_.push_back(std::move(ts));
}

void TimeSeriesProbe::arm() {
  util::require(!armed_, "probe already armed");
  util::require(!gauges_.empty(), "no gauges registered");
  armed_ = true;
  simulator_->schedule_at(start_, category_, [this] { sample(); });
}

void TimeSeriesProbe::disarm() { stopped_ = true; }

void TimeSeriesProbe::sample() {
  if (stopped_) {
    return;
  }
  const double now = simulator_->now();
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    series_[i].times.push_back(now);
    series_[i].values.push_back(gauges_[i]());
  }
  simulator_->schedule_in(period_, category_, [this] { sample(); });
}

const TimeSeries& TimeSeriesProbe::series(const std::string& name) const {
  for (const TimeSeries& ts : series_) {
    if (ts.name == name) {
      return ts;
    }
  }
  util::require(false, "no such series: " + name);
  util::unreachable("series lookup");
}

}  // namespace anyqos::sim
