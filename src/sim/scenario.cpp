#include "src/sim/scenario.h"

#include <cmath>
#include <initializer_list>
#include <utility>

#include "src/core/selector.h"
#include "src/net/topologies.h"
#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::sim {
namespace {

using util::JsonValue;

[[noreturn]] void fail(std::string_view where, const std::string& what) {
  throw std::invalid_argument("scenario: " + std::string(where) + ": " + what);
}

/// Typo safety for repro files: every object's keys must come from its
/// schema — a misspelled knob silently falling back to a default would make
/// a committed repro lie about what it reproduces.
void check_keys(const JsonValue& object, std::string_view where,
                std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : object.as_object()) {
    bool known = false;
    for (const std::string_view candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      fail(where, "unknown key \"" + key + "\"");
    }
  }
}

double get_number(const JsonValue& object, std::string_view where, std::string_view key,
                  double fallback) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) {
    return fallback;
  }
  if (!value->is_number()) {
    fail(where, "\"" + std::string(key) + "\" must be a number");
  }
  return value->as_number();
}

std::uint64_t get_uint(const JsonValue& object, std::string_view where, std::string_view key,
                       std::uint64_t fallback) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) {
    return fallback;
  }
  if (!value->is_number() || value->as_number() < 0.0 ||
      value->as_number() != std::floor(value->as_number())) {
    fail(where, "\"" + std::string(key) + "\" must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(value->as_number());
}

bool get_bool(const JsonValue& object, std::string_view where, std::string_view key,
              bool fallback) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) {
    return fallback;
  }
  if (!value->is_bool()) {
    fail(where, "\"" + std::string(key) + "\" must be a boolean");
  }
  return value->as_bool();
}

std::string get_string(const JsonValue& object, std::string_view where, std::string_view key,
                       std::string fallback) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) {
    return fallback;
  }
  if (!value->is_string()) {
    fail(where, "\"" + std::string(key) + "\" must be a string");
  }
  return value->as_string();
}

std::vector<net::NodeId> get_nodes(const JsonValue& object, std::string_view where,
                                   std::string_view key) {
  const JsonValue* value = object.find(key);
  std::vector<net::NodeId> nodes;
  if (value == nullptr) {
    return nodes;
  }
  if (!value->is_array()) {
    fail(where, "\"" + std::string(key) + "\" must be an array of node ids");
  }
  for (const JsonValue& element : value->as_array()) {
    if (!element.is_number() || element.as_number() < 0.0 ||
        element.as_number() != std::floor(element.as_number())) {
      fail(where, "\"" + std::string(key) + "\" entries must be non-negative integers");
    }
    nodes.push_back(static_cast<net::NodeId>(element.as_number()));
  }
  return nodes;
}

JsonValue nodes_to_json(const std::vector<net::NodeId>& nodes) {
  JsonValue array = JsonValue::array();
  for (const net::NodeId node : nodes) {
    array.push_back(JsonValue::number(static_cast<double>(node)));
  }
  return array;
}

bool axes_enabled(const FaultAxes& axes) {
  return axes.link_rate > 0.0 || axes.churn_rate > 0.0 || axes.node_rate > 0.0;
}

}  // namespace

net::Topology build_scenario_topology(const std::string& spec) {
  if (spec == "mci") {
    return net::topologies::mci_backbone();
  }
  if (util::starts_with(spec, "line:")) {
    return net::topologies::line(util::parse_unsigned(spec.substr(5)).value());
  }
  if (util::starts_with(spec, "ring:")) {
    return net::topologies::ring(util::parse_unsigned(spec.substr(5)).value());
  }
  if (util::starts_with(spec, "star:")) {
    return net::topologies::star(util::parse_unsigned(spec.substr(5)).value());
  }
  if (util::starts_with(spec, "grid:")) {
    const auto dims = util::split(spec.substr(5), 'x');
    util::require(dims.size() == 2, "grid spec is grid:<rows>x<cols>");
    return net::topologies::grid(util::parse_unsigned(dims[0]).value(),
                                 util::parse_unsigned(dims[1]).value());
  }
  if (util::starts_with(spec, "waxman:")) {
    const auto parts = util::split(spec.substr(7), 'x');
    util::require(parts.size() == 2, "waxman spec is waxman:<n>x<seed>");
    return net::topologies::waxman(util::parse_unsigned(parts[0]).value(), 0.6, 0.5,
                                   util::parse_unsigned(parts[1]).value());
  }
  util::require(false, "unknown topology spec '" + spec +
                           "' (mci, line:N, ring:N, star:N, grid:RxC, waxman:NxSEED)");
  util::unreachable("build_scenario_topology");
}

util::JsonValue scenario_to_json(const Scenario& scenario) {
  JsonValue root = JsonValue::object();
  root.set("schema", JsonValue::string(std::string(kScenarioSchema)));
  root.set("name", JsonValue::string(scenario.name));
  root.set("topology", JsonValue::string(scenario.topology));
  root.set("seed", JsonValue::number(static_cast<double>(scenario.seed)));

  JsonValue workload = JsonValue::object();
  workload.set("lambda", JsonValue::number(scenario.lambda));
  workload.set("mean_holding_s", JsonValue::number(scenario.mean_holding_s));
  workload.set("flow_bandwidth_bps", JsonValue::number(scenario.flow_bandwidth_bps));
  workload.set("sources", nodes_to_json(scenario.sources));
  root.set("workload", std::move(workload));

  JsonValue system = JsonValue::object();
  system.set("algorithm", JsonValue::string(scenario.algorithm));
  system.set("max_tries", JsonValue::number(static_cast<double>(scenario.max_tries)));
  system.set("alpha", JsonValue::number(scenario.alpha));
  system.set("anycast_share", JsonValue::number(scenario.anycast_share));
  system.set("group", nodes_to_json(scenario.group));
  system.set("failover_readmit", JsonValue::boolean(scenario.failover_readmit));
  system.set("path_repair", JsonValue::boolean(scenario.path_repair));
  root.set("system", std::move(system));

  JsonValue run = JsonValue::object();
  run.set("warmup_s", JsonValue::number(scenario.warmup_s));
  run.set("measure_s", JsonValue::number(scenario.measure_s));
  run.set("drain_to_quiescence", JsonValue::boolean(scenario.drain_to_quiescence));
  run.set("drain_max_events",
          JsonValue::number(static_cast<double>(scenario.drain_max_events)));
  run.set("drain_max_sim_s", JsonValue::number(scenario.drain_max_sim_s));
  root.set("run", std::move(run));

  if (scenario.resilience.has_value()) {
    const ScenarioResilience& r = *scenario.resilience;
    JsonValue block = JsonValue::object();
    block.set("loss_probability", JsonValue::number(r.loss_probability));
    block.set("hop_delay_s", JsonValue::number(r.hop_delay_s));
    block.set("hop_jitter_s", JsonValue::number(r.hop_jitter_s));
    block.set("retransmit_timeout_s", JsonValue::number(r.retransmit_timeout_s));
    block.set("backoff_factor", JsonValue::number(r.backoff_factor));
    block.set("backoff_jitter", JsonValue::number(r.backoff_jitter));
    block.set("max_retransmits",
              JsonValue::number(static_cast<double>(r.max_retransmits)));
    block.set("orphan_hold_s", JsonValue::number(r.orphan_hold_s));
    root.set("resilience", std::move(block));
  }
  if (scenario.reconvergence.has_value()) {
    JsonValue block = JsonValue::object();
    block.set("policy", JsonValue::string(scenario.reconvergence->policy));
    block.set("param_s", JsonValue::number(scenario.reconvergence->param_s));
    root.set("reconvergence", std::move(block));
  }
  if (scenario.governor.has_value()) {
    const ScenarioGovernor& g = *scenario.governor;
    JsonValue block = JsonValue::object();
    block.set("adaptive_retrial", JsonValue::boolean(g.adaptive_retrial));
    block.set("member_breakers", JsonValue::boolean(g.member_breakers));
    block.set("window_s", JsonValue::number(g.window_s));
    block.set("min_tries", JsonValue::number(static_cast<double>(g.min_tries)));
    block.set("breaker_threshold",
              JsonValue::number(static_cast<double>(g.breaker_threshold)));
    block.set("breaker_cooldown_s", JsonValue::number(g.breaker_cooldown_s));
    block.set("shed_budget_msgs_per_s", JsonValue::number(g.shed_budget_msgs_per_s));
    block.set("shed_burst_msgs", JsonValue::number(g.shed_burst_msgs));
    root.set("governor", std::move(block));
  }
  if (axes_enabled(scenario.axes)) {
    JsonValue block = JsonValue::object();
    block.set("link_rate", JsonValue::number(scenario.axes.link_rate));
    block.set("link_mean_repair_s", JsonValue::number(scenario.axes.link_mean_repair_s));
    block.set("churn_rate", JsonValue::number(scenario.axes.churn_rate));
    block.set("churn_mean_down_s", JsonValue::number(scenario.axes.churn_mean_down_s));
    block.set("node_rate", JsonValue::number(scenario.axes.node_rate));
    block.set("node_mean_repair_s", JsonValue::number(scenario.axes.node_mean_repair_s));
    root.set("axes", std::move(block));
  }

  if (!scenario.link_faults.empty()) {
    JsonValue array = JsonValue::array();
    for (const LinkFault& fault : scenario.link_faults) {
      JsonValue entry = JsonValue::object();
      entry.set("a", JsonValue::number(static_cast<double>(fault.a)));
      entry.set("b", JsonValue::number(static_cast<double>(fault.b)));
      entry.set("fail_at", JsonValue::number(fault.fail_at));
      entry.set("repair_at", JsonValue::number(fault.repair_at));
      array.push_back(std::move(entry));
    }
    root.set("link_faults", std::move(array));
  }
  if (!scenario.churn.empty()) {
    JsonValue array = JsonValue::array();
    for (const MemberChurnEvent& event : scenario.churn) {
      JsonValue entry = JsonValue::object();
      entry.set("member", JsonValue::number(static_cast<double>(event.member_index)));
      entry.set("down_at", JsonValue::number(event.down_at));
      entry.set("up_at", JsonValue::number(event.up_at));
      array.push_back(std::move(entry));
    }
    root.set("churn", std::move(array));
  }
  if (!scenario.node_faults.empty()) {
    JsonValue array = JsonValue::array();
    for (const NodeFault& fault : scenario.node_faults) {
      JsonValue entry = JsonValue::object();
      entry.set("node", JsonValue::number(static_cast<double>(fault.node)));
      entry.set("fail_at", JsonValue::number(fault.fail_at));
      entry.set("repair_at", JsonValue::number(fault.repair_at));
      array.push_back(std::move(entry));
    }
    root.set("node_faults", std::move(array));
  }
  if (!scenario.regional_outages.empty()) {
    JsonValue array = JsonValue::array();
    for (const RegionalOutageSpec& outage : scenario.regional_outages) {
      JsonValue entry = JsonValue::object();
      entry.set("epicenter", JsonValue::number(static_cast<double>(outage.epicenter)));
      entry.set("radius_hops",
                JsonValue::number(static_cast<double>(outage.radius_hops)));
      entry.set("fail_at", JsonValue::number(outage.fail_at));
      entry.set("repair_at", JsonValue::number(outage.repair_at));
      array.push_back(std::move(entry));
    }
    root.set("regional_outages", std::move(array));
  }
  if (!scenario.ops.empty()) {
    JsonValue array = JsonValue::array();
    for (const control::TimedDirective& timed : scenario.ops) {
      JsonValue entry = JsonValue::object();
      entry.set("t", JsonValue::number(timed.apply_at));
      entry.set("knob", JsonValue::string(control::to_string(timed.directive.knob)));
      entry.set("value", JsonValue::number(timed.directive.value));
      array.push_back(std::move(entry));
    }
    root.set("ops", std::move(array));
  }
  return root;
}

Scenario scenario_from_json(const util::JsonValue& document) {
  if (!document.is_object()) {
    fail("document", "top level must be an object");
  }
  check_keys(document, "document",
             {"schema", "name", "topology", "seed", "workload", "system", "run",
              "resilience", "reconvergence", "governor", "axes", "link_faults", "churn",
              "node_faults", "regional_outages", "ops"});
  const std::string schema = get_string(document, "document", "schema", "");
  if (schema != kScenarioSchema) {
    fail("document", "schema must be \"" + std::string(kScenarioSchema) + "\" (got \"" +
                         schema + "\")");
  }

  Scenario scenario;
  scenario.name = get_string(document, "document", "name", scenario.name);
  scenario.topology = get_string(document, "document", "topology", scenario.topology);
  scenario.seed = get_uint(document, "document", "seed", scenario.seed);

  if (const JsonValue* workload = document.find("workload"); workload != nullptr) {
    check_keys(*workload, "workload",
               {"lambda", "mean_holding_s", "flow_bandwidth_bps", "sources"});
    scenario.lambda = get_number(*workload, "workload", "lambda", scenario.lambda);
    scenario.mean_holding_s =
        get_number(*workload, "workload", "mean_holding_s", scenario.mean_holding_s);
    scenario.flow_bandwidth_bps = get_number(*workload, "workload", "flow_bandwidth_bps",
                                             scenario.flow_bandwidth_bps);
    scenario.sources = get_nodes(*workload, "workload", "sources");
  }
  if (const JsonValue* system = document.find("system"); system != nullptr) {
    check_keys(*system, "system",
               {"algorithm", "max_tries", "alpha", "anycast_share", "group",
                "failover_readmit", "path_repair"});
    scenario.algorithm = get_string(*system, "system", "algorithm", scenario.algorithm);
    scenario.max_tries = static_cast<std::size_t>(
        get_uint(*system, "system", "max_tries", scenario.max_tries));
    scenario.alpha = get_number(*system, "system", "alpha", scenario.alpha);
    scenario.anycast_share =
        get_number(*system, "system", "anycast_share", scenario.anycast_share);
    scenario.group = get_nodes(*system, "system", "group");
    scenario.failover_readmit =
        get_bool(*system, "system", "failover_readmit", scenario.failover_readmit);
    scenario.path_repair = get_bool(*system, "system", "path_repair", scenario.path_repair);
  }
  if (const JsonValue* run = document.find("run"); run != nullptr) {
    check_keys(*run, "run",
               {"warmup_s", "measure_s", "drain_to_quiescence", "drain_max_events",
                "drain_max_sim_s"});
    scenario.warmup_s = get_number(*run, "run", "warmup_s", scenario.warmup_s);
    scenario.measure_s = get_number(*run, "run", "measure_s", scenario.measure_s);
    scenario.drain_to_quiescence =
        get_bool(*run, "run", "drain_to_quiescence", scenario.drain_to_quiescence);
    scenario.drain_max_events = static_cast<std::size_t>(
        get_uint(*run, "run", "drain_max_events", scenario.drain_max_events));
    scenario.drain_max_sim_s =
        get_number(*run, "run", "drain_max_sim_s", scenario.drain_max_sim_s);
  }
  if (const JsonValue* block = document.find("resilience"); block != nullptr) {
    check_keys(*block, "resilience",
               {"loss_probability", "hop_delay_s", "hop_jitter_s", "retransmit_timeout_s",
                "backoff_factor", "backoff_jitter", "max_retransmits", "orphan_hold_s"});
    ScenarioResilience r;
    r.loss_probability =
        get_number(*block, "resilience", "loss_probability", r.loss_probability);
    r.hop_delay_s = get_number(*block, "resilience", "hop_delay_s", r.hop_delay_s);
    r.hop_jitter_s = get_number(*block, "resilience", "hop_jitter_s", r.hop_jitter_s);
    r.retransmit_timeout_s =
        get_number(*block, "resilience", "retransmit_timeout_s", r.retransmit_timeout_s);
    r.backoff_factor = get_number(*block, "resilience", "backoff_factor", r.backoff_factor);
    r.backoff_jitter = get_number(*block, "resilience", "backoff_jitter", r.backoff_jitter);
    r.max_retransmits = static_cast<std::size_t>(
        get_uint(*block, "resilience", "max_retransmits", r.max_retransmits));
    r.orphan_hold_s = get_number(*block, "resilience", "orphan_hold_s", r.orphan_hold_s);
    scenario.resilience = r;
  }
  if (const JsonValue* block = document.find("reconvergence"); block != nullptr) {
    check_keys(*block, "reconvergence", {"policy", "param_s"});
    ScenarioReconvergence r;
    r.policy = get_string(*block, "reconvergence", "policy", r.policy);
    r.param_s = get_number(*block, "reconvergence", "param_s", r.param_s);
    if (r.policy != "instant" && r.policy != "fixed" && r.policy != "flooding") {
      fail("reconvergence", "policy must be instant, fixed, or flooding");
    }
    scenario.reconvergence = r;
  }
  if (const JsonValue* block = document.find("governor"); block != nullptr) {
    check_keys(*block, "governor",
               {"adaptive_retrial", "member_breakers", "window_s", "min_tries",
                "breaker_threshold", "breaker_cooldown_s", "shed_budget_msgs_per_s",
                "shed_burst_msgs"});
    ScenarioGovernor g;
    g.adaptive_retrial = get_bool(*block, "governor", "adaptive_retrial", g.adaptive_retrial);
    g.member_breakers = get_bool(*block, "governor", "member_breakers", g.member_breakers);
    g.window_s = get_number(*block, "governor", "window_s", g.window_s);
    g.min_tries =
        static_cast<std::size_t>(get_uint(*block, "governor", "min_tries", g.min_tries));
    g.breaker_threshold = static_cast<std::size_t>(
        get_uint(*block, "governor", "breaker_threshold", g.breaker_threshold));
    g.breaker_cooldown_s =
        get_number(*block, "governor", "breaker_cooldown_s", g.breaker_cooldown_s);
    g.shed_budget_msgs_per_s =
        get_number(*block, "governor", "shed_budget_msgs_per_s", g.shed_budget_msgs_per_s);
    g.shed_burst_msgs = get_number(*block, "governor", "shed_burst_msgs", g.shed_burst_msgs);
    scenario.governor = g;
  }
  if (const JsonValue* block = document.find("axes"); block != nullptr) {
    check_keys(*block, "axes",
               {"link_rate", "link_mean_repair_s", "churn_rate", "churn_mean_down_s",
                "node_rate", "node_mean_repair_s"});
    scenario.axes.link_rate = get_number(*block, "axes", "link_rate", 0.0);
    scenario.axes.link_mean_repair_s =
        get_number(*block, "axes", "link_mean_repair_s", scenario.axes.link_mean_repair_s);
    scenario.axes.churn_rate = get_number(*block, "axes", "churn_rate", 0.0);
    scenario.axes.churn_mean_down_s =
        get_number(*block, "axes", "churn_mean_down_s", scenario.axes.churn_mean_down_s);
    scenario.axes.node_rate = get_number(*block, "axes", "node_rate", 0.0);
    scenario.axes.node_mean_repair_s =
        get_number(*block, "axes", "node_mean_repair_s", scenario.axes.node_mean_repair_s);
  }

  if (const JsonValue* array = document.find("link_faults"); array != nullptr) {
    for (const JsonValue& element : array->as_array()) {
      check_keys(element, "link_faults", {"a", "b", "fail_at", "repair_at"});
      scenario.link_faults.push_back(single_fault(
          static_cast<net::NodeId>(get_uint(element, "link_faults", "a", 0)),
          static_cast<net::NodeId>(get_uint(element, "link_faults", "b", 0)),
          get_number(element, "link_faults", "fail_at", 0.0),
          get_number(element, "link_faults", "repair_at", 0.0)));
    }
  }
  if (const JsonValue* array = document.find("churn"); array != nullptr) {
    for (const JsonValue& element : array->as_array()) {
      check_keys(element, "churn", {"member", "down_at", "up_at"});
      scenario.churn.push_back(single_churn(
          static_cast<std::size_t>(get_uint(element, "churn", "member", 0)),
          get_number(element, "churn", "down_at", 0.0),
          get_number(element, "churn", "up_at", 0.0)));
    }
  }
  if (const JsonValue* array = document.find("node_faults"); array != nullptr) {
    for (const JsonValue& element : array->as_array()) {
      check_keys(element, "node_faults", {"node", "fail_at", "repair_at"});
      scenario.node_faults.push_back(single_node_fault(
          static_cast<net::NodeId>(get_uint(element, "node_faults", "node", 0)),
          get_number(element, "node_faults", "fail_at", 0.0),
          get_number(element, "node_faults", "repair_at", 0.0)));
    }
  }
  if (const JsonValue* array = document.find("regional_outages"); array != nullptr) {
    for (const JsonValue& element : array->as_array()) {
      check_keys(element, "regional_outages",
                 {"epicenter", "radius_hops", "fail_at", "repair_at"});
      RegionalOutageSpec outage;
      outage.epicenter =
          static_cast<net::NodeId>(get_uint(element, "regional_outages", "epicenter", 0));
      outage.radius_hops = static_cast<std::size_t>(
          get_uint(element, "regional_outages", "radius_hops", 0));
      outage.fail_at = get_number(element, "regional_outages", "fail_at", 0.0);
      outage.repair_at = get_number(element, "regional_outages", "repair_at", 0.0);
      if (!(outage.repair_at > outage.fail_at) || outage.fail_at < 0.0) {
        fail("regional_outages", "repair_at must follow a non-negative fail_at");
      }
      scenario.regional_outages.push_back(outage);
    }
  }
  if (const JsonValue* array = document.find("ops"); array != nullptr) {
    double last_t = 0.0;
    for (const JsonValue& element : array->as_array()) {
      check_keys(element, "ops", {"t", "knob", "value"});
      control::TimedDirective timed;
      timed.apply_at = get_number(element, "ops", "t", 0.0);
      if (timed.apply_at < last_t) {
        fail("ops", "directives must be sorted by t");
      }
      last_t = timed.apply_at;
      const std::string knob = get_string(element, "ops", "knob", "");
      const auto parsed = control::parse_knob(knob);
      if (!parsed.has_value()) {
        fail("ops", "unknown knob \"" + knob + "\"");
      }
      timed.directive.knob = *parsed;
      timed.directive.value = get_number(element, "ops", "value", 0.0);
      if (const auto error =
              control::validate_directive(timed.directive.knob, timed.directive.value);
          error.has_value()) {
        fail("ops", *error);
      }
      scenario.ops.push_back(timed);
    }
  }
  return scenario;
}

std::string save_scenario(const Scenario& scenario) {
  return scenario_to_json(scenario).dump(/*pretty=*/true);
}

Scenario load_scenario(std::string_view text) {
  return scenario_from_json(util::parse_json(text));
}

void materialize_random_axes(Scenario& scenario, const net::Topology& topology) {
  if (!axes_enabled(scenario.axes)) {
    return;
  }
  const double horizon = scenario.warmup_s + scenario.measure_s;
  ScenarioSchedules drawn = scenario_schedules(topology, scenario.group.size(), horizon,
                                               scenario.axes, scenario.seed);
  // Append after the explicit entries, matching make_scenario_run's order,
  // so the materialized scenario runs byte-identically to the original.
  scenario.churn.insert(scenario.churn.end(), drawn.churn.begin(), drawn.churn.end());
  scenario.link_faults.insert(scenario.link_faults.end(), drawn.link_faults.begin(),
                              drawn.link_faults.end());
  scenario.node_faults.insert(scenario.node_faults.end(), drawn.node_faults.begin(),
                              drawn.node_faults.end());
  scenario.axes = FaultAxes{};
}

std::unique_ptr<ScenarioRun> make_scenario_run(const Scenario& scenario) {
  auto run = std::make_unique<ScenarioRun>();
  run->topology = build_scenario_topology(scenario.topology);
  const net::Topology& topology = run->topology;
  util::require(!scenario.group.empty(), "scenario needs a non-empty group");
  util::require(!scenario.sources.empty(), "scenario needs a non-empty source set");

  SimulationConfig config;
  config.traffic.arrival_rate = scenario.lambda;
  config.traffic.mean_holding_s = scenario.mean_holding_s;
  config.traffic.flow_bandwidth_bps = scenario.flow_bandwidth_bps;
  config.traffic.sources = scenario.sources;
  config.group_members = scenario.group;
  config.anycast_share = scenario.anycast_share;
  config.algorithm = core::parse_algorithm(scenario.algorithm);
  config.max_tries = scenario.max_tries;
  config.alpha = scenario.alpha;
  config.warmup_s = scenario.warmup_s;
  config.measure_s = scenario.measure_s;
  config.seed = scenario.seed;
  config.failover_readmit = scenario.failover_readmit;
  config.path_repair = scenario.path_repair;
  config.drain_to_quiescence = scenario.drain_to_quiescence;
  config.drain_max_events = scenario.drain_max_events;
  config.drain_max_sim_s = scenario.drain_max_sim_s;

  if (scenario.resilience.has_value()) {
    const ScenarioResilience& r = *scenario.resilience;
    signaling::ResilienceOptions options;
    options.faults.loss_probability = r.loss_probability;
    options.faults.hop_delay_s = r.hop_delay_s;
    options.faults.hop_jitter_s = r.hop_jitter_s;
    options.retransmit_timeout_s = r.retransmit_timeout_s;
    options.backoff_factor = r.backoff_factor;
    options.backoff_jitter = r.backoff_jitter;
    options.max_retransmits = r.max_retransmits;
    options.orphan_hold_s = r.orphan_hold_s;
    config.resilience = options;
  }

  // Explicit entries first, then the axes' draws — the order
  // materialize_random_axes preserves.
  config.faults = scenario.link_faults;
  config.churn = scenario.churn;
  config.node_faults = scenario.node_faults;
  if (axes_enabled(scenario.axes)) {
    const double horizon = scenario.warmup_s + scenario.measure_s;
    ScenarioSchedules drawn = scenario_schedules(topology, scenario.group.size(), horizon,
                                                 scenario.axes, scenario.seed);
    config.churn.insert(config.churn.end(), drawn.churn.begin(), drawn.churn.end());
    config.faults.insert(config.faults.end(), drawn.link_faults.begin(),
                         drawn.link_faults.end());
    config.node_faults.insert(config.node_faults.end(), drawn.node_faults.begin(),
                              drawn.node_faults.end());
  }
  for (const RegionalOutageSpec& outage : scenario.regional_outages) {
    const std::vector<NodeFault> expanded = regional_outage(
        topology, outage.epicenter, outage.radius_hops, outage.fail_at, outage.repair_at);
    config.node_faults.insert(config.node_faults.end(), expanded.begin(), expanded.end());
  }

  if (scenario.reconvergence.has_value()) {
    const ScenarioReconvergence& r = *scenario.reconvergence;
    if (r.policy == "instant") {
      run->reconvergence = std::make_unique<net::InstantReconvergence>();
    } else if (r.policy == "fixed") {
      run->reconvergence = std::make_unique<net::FixedReconvergence>(r.param_s);
    } else if (r.policy == "flooding") {
      run->reconvergence = std::make_unique<net::FloodingReconvergence>(r.param_s);
    } else {
      util::require(false, "unknown reconvergence policy '" + r.policy + "'");
    }
    config.reconvergence = run->reconvergence.get();
  }
  util::require(!scenario.path_repair || run->reconvergence != nullptr,
                "scenario: path_repair requires a reconvergence block");

  if (scenario.governor.has_value()) {
    const ScenarioGovernor& g = *scenario.governor;
    control::GovernorOptions options;
    options.adaptive_retrial = g.adaptive_retrial;
    options.member_breakers = g.member_breakers;
    options.window_s = g.window_s;
    options.min_tries = g.min_tries;
    options.breaker.failure_threshold = g.breaker_threshold;
    options.breaker.cooldown_s = g.breaker_cooldown_s;
    options.shed_budget_msgs_per_s = g.shed_budget_msgs_per_s;
    options.shed_burst_msgs = g.shed_burst_msgs;
    run->governor = std::make_unique<control::OverloadGovernor>(options);
    config.governor = run->governor.get();
  }
  util::require(scenario.ops.empty() || run->governor != nullptr,
                "scenario: ops directives require a governor block");
  config.ops_replay = scenario.ops;

  run->config = std::move(config);
  return run;
}

}  // namespace anyqos::sim
