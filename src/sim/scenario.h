// The scenario plane: one serializable description of one chaos run.
//
// A Scenario captures, in a single JSON document, every axis a run can be
// perturbed on — workload, system under test, explicit link faults, member
// churn, node crashes, correlated regional outages, random fault axes
// (re-drawn deterministically from the scenario seed via the shared
// scenario_schedules builder), reconvergence policy, governor knobs, and
// replayed ops directives. Save -> load -> run is byte-identical to the
// in-memory run (tested), so any run — a hand-written experiment, a CI
// chaos cell, or a chaosfuzz-shrunk repro — is a committed, replayable
// artifact. `dacsim --scenario`, `chaossim --scenario`, and tools/chaosfuzz
// all consume this plane; scripts/check-scenario.py lints the format.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/control/directive.h"
#include "src/control/governor.h"
#include "src/net/reconvergence.h"
#include "src/net/topology.h"
#include "src/sim/faults.h"
#include "src/sim/simulation.h"
#include "src/util/json.h"

namespace anyqos::sim {

/// Schema tag carried by every scenario file ("schema" key).
inline constexpr std::string_view kScenarioSchema = "anyqos.scenario/1";

/// Resilient-signaling knobs (signaling::ResilienceOptions flattened with
/// its FaultPlaneOptions). Presence of the block turns the resilient
/// protocol on; absence keeps the paper's fault-free walk.
struct ScenarioResilience {
  double loss_probability = 0.0;
  double hop_delay_s = 0.0;
  double hop_jitter_s = 0.0;
  double retransmit_timeout_s = 1.0;
  double backoff_factor = 2.0;
  double backoff_jitter = 0.1;
  std::size_t max_retransmits = 3;
  double orphan_hold_s = 30.0;
};

/// Routing reconvergence model: "instant", "fixed" (param_s = delay), or
/// "flooding" (param_s = per-round delay).
struct ScenarioReconvergence {
  std::string policy = "instant";
  double param_s = 0.0;
};

/// Overload-governor configuration (control::GovernorOptions subset that
/// the runtime knobs address, plus the mechanism switches).
struct ScenarioGovernor {
  bool adaptive_retrial = true;
  bool member_breakers = true;
  double window_s = 50.0;
  std::size_t min_tries = 3;
  std::size_t breaker_threshold = 5;
  double breaker_cooldown_s = 60.0;
  double shed_budget_msgs_per_s = 0.0;
  double shed_burst_msgs = 0.0;
};

/// Correlated regional outage, kept symbolic (epicenter + radius) rather
/// than expanded so shrinking can drop it as one entry.
struct RegionalOutageSpec {
  net::NodeId epicenter = 0;
  std::size_t radius_hops = 0;
  double fail_at = 0.0;
  double repair_at = 0.0;
};

/// One complete, serializable chaos run description.
struct Scenario {
  std::string name = "scenario";
  std::string topology = "mci";  ///< build_scenario_topology spec
  std::uint64_t seed = 1;

  // Workload.
  double lambda = 20.0;
  double mean_holding_s = 180.0;
  double flow_bandwidth_bps = 64'000.0;
  std::vector<net::NodeId> sources;

  // System under test (DAC only — the fuzzable surface is the distributed
  // machinery; GDI and the centralized baseline have no signaling to break).
  std::string algorithm = "ED";
  std::size_t max_tries = 2;
  double alpha = 0.5;
  double anycast_share = 0.2;
  std::vector<net::NodeId> group;
  bool failover_readmit = true;
  bool path_repair = false;

  // Run control.
  double warmup_s = 0.0;  ///< chaos runs default warmup-free: exact reconciliation
  double measure_s = 2'000.0;
  bool drain_to_quiescence = true;
  std::size_t drain_max_events = 0;  ///< drain watchdog (0 = uncapped)
  double drain_max_sim_s = 0.0;

  // Optional planes.
  std::optional<ScenarioResilience> resilience;
  std::optional<ScenarioReconvergence> reconvergence;
  std::optional<ScenarioGovernor> governor;

  // Random fault axes, re-drawn from `seed` via scenario_schedules on every
  // run (so the file stays small); materialize_random_axes expands them
  // into the explicit lists below when a tool needs entry-level control.
  FaultAxes axes;

  // Explicit fault entries (applied in addition to the axes' draws).
  std::vector<LinkFault> link_faults;
  std::vector<MemberChurnEvent> churn;
  std::vector<NodeFault> node_faults;
  std::vector<RegionalOutageSpec> regional_outages;

  // Replayed ops directives (requires `governor`).
  std::vector<control::TimedDirective> ops;

  /// Total explicit fault entries (the shrinker's size metric).
  [[nodiscard]] std::size_t fault_entries() const {
    return link_faults.size() + churn.size() + node_faults.size() +
           regional_outages.size();
  }
};

/// Builds a topology from a scenario spec: "mci", "line:N", "ring:N",
/// "star:N", "grid:RxC", "waxman:NxSEED". Shared with dacsim's --topology.
net::Topology build_scenario_topology(const std::string& spec);

/// Scenario -> JSON document (fixed key order, round-trip-exact numbers;
/// dump(true) of the result is the canonical file format).
util::JsonValue scenario_to_json(const Scenario& scenario);
/// JSON document -> Scenario. Throws std::invalid_argument on a missing
/// schema tag, unknown keys (typo safety for repro files), wrong types, or
/// out-of-order fault windows.
Scenario scenario_from_json(const util::JsonValue& document);

/// Canonical file text (pretty JSON, trailing newline).
std::string save_scenario(const Scenario& scenario);
/// Parses + validates scenario file text.
Scenario load_scenario(std::string_view text);

/// Expands the random axes into the explicit entry lists (via the shared
/// scenario_schedules builder on `topology`) and zeroes the axes, so every
/// fault becomes an individually addressable entry. Idempotent once axes
/// are zero. The expanded scenario runs identically to the original.
void materialize_random_axes(Scenario& scenario, const net::Topology& topology);

/// Everything needed to run a scenario. The config's reconvergence/governor
/// pointers alias the owned objects below, and `Simulation` keeps a
/// reference to `topology` — construct the Simulation only after this
/// object has its final address, and keep it alive through run().
struct ScenarioRun {
  net::Topology topology;
  SimulationConfig config;
  std::unique_ptr<net::ReconvergencePolicy> reconvergence;
  std::unique_ptr<control::OverloadGovernor> governor;

  ScenarioRun() = default;
  ScenarioRun(ScenarioRun&&) = delete;  // config holds pointers into *this
  ScenarioRun& operator=(ScenarioRun&&) = delete;
};

/// Lowers a scenario onto the simulation API: builds the topology, draws
/// the random axes, expands regional outages, and wires the optional
/// planes. Validates cross-field constraints (group/sources in range,
/// path_repair requires reconvergence, ops require governor). The result
/// is heap-allocated because SimulationConfig points into it.
std::unique_ptr<ScenarioRun> make_scenario_run(const Scenario& scenario);

}  // namespace anyqos::sim
