#include "src/sim/churn.h"

#include <algorithm>

#include "src/des/random.h"
#include "src/sim/faults.h"
#include "src/util/require.h"

namespace anyqos::sim {

MemberChurnEvent single_churn(std::size_t member_index, double down_at, double up_at) {
  util::require(down_at >= 0.0, "churn down time must be non-negative");
  util::require(up_at > down_at, "member recovery must follow the outage");
  MemberChurnEvent event;
  event.member_index = member_index;
  event.down_at = down_at;
  event.up_at = up_at;
  return event;
}

std::vector<MemberChurnEvent> random_churn_schedule(std::size_t group_size, double horizon_s,
                                                    double churn_rate, double mean_downtime_s,
                                                    std::uint64_t seed) {
  util::require(group_size >= 1, "churn schedule needs a non-empty group");
  util::require(horizon_s >= 0.0, "horizon must be non-negative");
  util::require(churn_rate >= 0.0, "churn rate must be non-negative");
  std::vector<MemberChurnEvent> schedule;
  if (horizon_s == 0.0 || churn_rate == 0.0) {
    return schedule;  // degenerate but well-defined: nobody churns
  }
  util::require(mean_downtime_s > 0.0, "mean downtime must be positive");
  des::RandomStream rng(seed);
  // Per-member windows come from the shared renewal helper (failure gap,
  // then downtime — the caps and draw order match this generator's original
  // inline loop exactly, so schedules stay byte-identical).
  for (std::size_t member = 0; member < group_size; ++member) {
    for (const auto& [down_at, up_at] :
         poisson_outages(rng, horizon_s, churn_rate, mean_downtime_s)) {
      schedule.push_back(single_churn(member, down_at, up_at));
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const MemberChurnEvent& x, const MemberChurnEvent& y) {
              return x.down_at < y.down_at;
            });
  return schedule;
}

}  // namespace anyqos::sim
