// Measurement collection for simulation runs (paper Section 5.1's metrics:
// admission probability and average number of retrials, plus the signaling
// and utilization diagnostics this library adds).
#pragma once

#include <cstdint>
#include <vector>

#include "src/stats/accumulator.h"
#include "src/stats/confidence.h"
#include "src/stats/histogram.h"
#include "src/stats/time_weighted.h"

namespace anyqos::sim {

/// Why an active flow's reservation was torn down (robustness extension).
/// Orphan reclaims are *not* teardowns of active flows — they release state
/// the signaling plane lost track of — and are counted by the resilient
/// protocol itself (signaling::ResilienceStats::orphans_reclaimed).
enum class TeardownCause : std::uint8_t {
  kExplicit,   ///< flow departed normally at the end of its holding time
  kLinkFault,  ///< a link on the flow's route failed
  kChurn,      ///< the group member the flow was pinned to went down
};

inline constexpr std::size_t kTeardownCauseCount = 3;

/// Streaming collector fed by the simulation; ignores everything recorded
/// before `begin_measurement` is called (warm-up deletion).
class MetricsCollector {
 public:
  /// `group_size` sizes the per-destination admission tally;
  /// `batch_count` configures the batch-means CI for admission probability.
  MetricsCollector(std::size_t group_size, std::size_t batch_count = 20);

  /// Starts the measurement window at simulated time `now` — prior samples
  /// are discarded, the active-flow integral restarts.
  void begin_measurement(double now);
  [[nodiscard]] bool measuring() const { return measuring_; }

  /// Records one admission decision: outcome, destinations tried, signaling
  /// messages spent, and (when admitted) the pinned destination index.
  void record_decision(bool admitted, std::size_t attempts, std::uint64_t messages,
                       std::size_t destination_index);
  /// Records the active-flow count after it changed at time `now`.
  void record_active_flows(double now, std::size_t active);
  /// Records a flow torn down by a link failure (fault extension).
  /// Equivalent to record_teardown(TeardownCause::kLinkFault).
  void record_dropped_flow();
  /// Records one flow teardown attributed to `cause`. Fault and churn
  /// teardowns also count as dropped flows.
  void record_teardown(TeardownCause cause);
  /// Records one failover re-admission attempt for a flow displaced by
  /// churn, and whether the network re-admitted it.
  void record_failover(bool admitted);
  /// Records one request fast-rejected by the overload governor's signaling
  /// budget before any reservation walk. Shed requests are *not* offered
  /// load: they appear in neither the admission probability nor the
  /// attempts/messages statistics, exactly because they cost zero walks —
  /// the separate tally keeps the two rejection causes distinguishable.
  void record_shed();
  /// Records one path-repair resolution for a flow broken by a failure on
  /// its route: re-signaled onto the post-reconvergence route (`repaired`)
  /// or dropped (unrepairable — dead endpoint, partition, or no capacity).
  /// Counted separately from churn failover: repair preserves the admitted
  /// flow, failover re-offers a torn-down one.
  void record_repair(bool repaired);

  // --- Results (valid once measuring) ---
  [[nodiscard]] std::uint64_t offered() const { return offered_; }
  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  /// Point estimate of the admission probability.
  [[nodiscard]] double admission_probability() const;
  /// Batch-means CI for the admission probability at `level`.
  [[nodiscard]] stats::ConfidenceInterval admission_ci(double level) const;
  /// Mean destinations tried per request (the paper's retrial metric).
  [[nodiscard]] double average_attempts() const;
  /// Distribution of destinations tried per request.
  [[nodiscard]] const stats::CountHistogram& attempts_histogram() const { return attempts_; }
  /// Mean signaling messages per request.
  [[nodiscard]] double average_messages() const;
  /// Admissions pinned to each group member.
  [[nodiscard]] const std::vector<std::uint64_t>& per_destination_admissions() const {
    return per_destination_;
  }
  /// Time-averaged number of active flows over the measurement window.
  [[nodiscard]] double average_active_flows(double now) const;
  /// Flows torn down involuntarily (link faults + member churn).
  [[nodiscard]] std::uint64_t dropped_flows() const { return dropped_; }
  /// Teardown tally attributed to `cause`.
  [[nodiscard]] std::uint64_t teardowns(TeardownCause cause) const;
  [[nodiscard]] std::uint64_t failover_attempts() const { return failover_attempts_; }
  [[nodiscard]] std::uint64_t failover_admitted() const { return failover_admitted_; }
  /// Requests shed by the governor's signaling budget (measurement window).
  [[nodiscard]] std::uint64_t shed() const { return shed_; }
  /// Broken flows re-signaled onto a live route (measurement window).
  [[nodiscard]] std::uint64_t repaired() const { return repaired_; }
  /// Broken flows dropped because no repair was possible (measurement window).
  [[nodiscard]] std::uint64_t unrepairable() const { return unrepairable_; }

  // --- Lifetime tallies (warm-up included) ---
  // The timeline sampler computes windowed rates from cumulative counters,
  // and its windows cover warm-up too (annotated, not discarded), so these
  // run from t = 0 and are never reset by begin_measurement.
  [[nodiscard]] std::uint64_t lifetime_offered() const { return lifetime_offered_; }
  [[nodiscard]] std::uint64_t lifetime_admitted() const { return lifetime_admitted_; }
  [[nodiscard]] std::uint64_t lifetime_rejected() const {
    return lifetime_offered_ - lifetime_admitted_;
  }
  /// Destinations tried summed over every request seen.
  [[nodiscard]] std::uint64_t lifetime_attempts() const { return lifetime_attempts_; }
  [[nodiscard]] std::uint64_t lifetime_teardowns(TeardownCause cause) const;
  [[nodiscard]] std::uint64_t lifetime_failover_attempts() const {
    return lifetime_failover_attempts_;
  }
  [[nodiscard]] std::uint64_t lifetime_failover_admitted() const {
    return lifetime_failover_admitted_;
  }
  [[nodiscard]] std::uint64_t lifetime_shed() const { return lifetime_shed_; }
  /// Successful path repairs, lifetime (the repairs_per_s timeline column).
  [[nodiscard]] std::uint64_t lifetime_repaired() const { return lifetime_repaired_; }

 private:
  bool measuring_ = false;
  std::uint64_t offered_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t teardowns_[kTeardownCauseCount] = {0, 0, 0};
  std::uint64_t failover_attempts_ = 0;
  std::uint64_t failover_admitted_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t repaired_ = 0;
  std::uint64_t unrepairable_ = 0;
  std::uint64_t lifetime_shed_ = 0;
  std::uint64_t lifetime_repaired_ = 0;
  std::uint64_t lifetime_offered_ = 0;
  std::uint64_t lifetime_admitted_ = 0;
  std::uint64_t lifetime_attempts_ = 0;
  std::uint64_t lifetime_teardowns_[kTeardownCauseCount] = {0, 0, 0};
  std::uint64_t lifetime_failover_attempts_ = 0;
  std::uint64_t lifetime_failover_admitted_ = 0;
  stats::BatchMeans admission_batches_;
  stats::CountHistogram attempts_;
  stats::Accumulator messages_;
  std::vector<std::uint64_t> per_destination_;
  stats::TimeWeighted active_flows_;
};

}  // namespace anyqos::sim
