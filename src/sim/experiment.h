// The paper's experimental model (Section 5.1) and sweep harness shared by
// all benchmark binaries and integration tests.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/net/topologies.h"
#include "src/sim/simulation.h"

namespace anyqos::sim {

/// The evaluation setup of Section 5.1, bundled so every bench/test uses
/// identical parameters: MCI-like backbone, 100 Mbit/s links with 20% for
/// anycast, sources at odd routers, group members at routers 0/4/8/12/16,
/// 64 kbit/s flows with mean lifetime 180 s.
struct ExperimentModel {
  net::Topology topology;
  std::vector<net::NodeId> sources;
  std::vector<net::NodeId> group_members;
  net::Bandwidth flow_bandwidth_bps = 64'000.0;
  double mean_holding_s = 180.0;
  double anycast_share = 0.2;

  /// A SimulationConfig preset with this model's workload at rate `lambda`
  /// (total requests/s) and the given run-control defaults.
  [[nodiscard]] SimulationConfig base_config(double lambda) const;
};

/// Builds the Section 5.1 model on the MCI-like backbone.
ExperimentModel paper_model();

/// One row of a lambda sweep.
struct SweepPoint {
  double lambda = 0.0;
  SimulationResult result;
};

/// Runs `configure(base_config(lambda))` for every rate in `lambdas`.
///
/// All points share the same master seed (common random numbers): comparing
/// systems at equal lambda sees identical arrival processes, which sharpens
/// the ordering comparisons the paper makes in Figures 6-7.
std::vector<SweepPoint> sweep_lambda(
    const ExperimentModel& model, const std::vector<double>& lambdas,
    const std::function<void(SimulationConfig&)>& configure);

/// The arrival-rate grid used by the figure benches (5, 10, ..., 50).
std::vector<double> default_lambda_grid();

/// Applies run-length overrides commonly exposed as bench flags.
struct RunControls {
  double warmup_s = 2'000.0;
  double measure_s = 20'000.0;
  std::uint64_t seed = 1;
};
void apply_run_controls(SimulationConfig& config, const RunControls& controls);

}  // namespace anyqos::sim
