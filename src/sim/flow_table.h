// Bookkeeping of active (admitted, not yet departed) anycast flows.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/net/topology.h"

namespace anyqos::sim {

using FlowId = std::uint64_t;

/// One admitted flow currently holding bandwidth.
struct ActiveFlow {
  FlowId id = 0;
  /// The admission request that created the flow (trace/span join key).
  std::uint64_t request_id = 0;
  net::NodeId source = net::kInvalidNode;
  std::size_t destination_index = 0;  ///< index into the anycast group
  net::Path route;                    ///< links holding the reservation
  net::Bandwidth bandwidth_bps = 0.0;
  double admitted_at = 0.0;
};

/// Id-keyed table of active flows with link-based lookup for fault handling.
class FlowTable {
 public:
  /// Registers a flow; assigns and returns a fresh id.
  FlowId insert(ActiveFlow flow);

  /// Re-registers a flow that was previously removed, keeping its id (path
  /// repair: the departure timer armed at admission still refers to it).
  /// The id must have been issued by this table and must not be active.
  void restore(ActiveFlow flow);

  /// Removes and returns the flow; throws std::invalid_argument if absent.
  ActiveFlow take(FlowId id);

  /// True when `id` is active (it may have been removed by a fault).
  [[nodiscard]] bool contains(FlowId id) const;
  [[nodiscard]] const ActiveFlow& get(FlowId id) const;

  [[nodiscard]] std::size_t size() const { return flows_.size(); }
  [[nodiscard]] bool empty() const { return flows_.empty(); }

  /// Ids of flows whose route crosses directed link `link`, in ascending id
  /// order (deterministic fault processing).
  [[nodiscard]] std::vector<FlowId> flows_using_link(net::LinkId link) const;

  /// Ids of flows pinned to group member `destination_index`, in ascending id
  /// order (deterministic churn processing).
  [[nodiscard]] std::vector<FlowId> flows_to_member(std::size_t destination_index) const;

  /// Applies `visit` to every active flow in ascending id order.
  void for_each(const std::function<void(const ActiveFlow&)>& visit) const;

 private:
  std::unordered_map<FlowId, ActiveFlow> flows_;
  FlowId next_id_ = 1;
};

}  // namespace anyqos::sim
