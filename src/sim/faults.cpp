#include "src/sim/faults.h"

#include <algorithm>

#include "src/des/random.h"
#include "src/util/require.h"

namespace anyqos::sim {

LinkFault single_fault(net::NodeId a, net::NodeId b, double fail_at, double repair_at) {
  util::require(repair_at > fail_at, "repair must follow failure");
  util::require(fail_at >= 0.0, "failure time must be non-negative");
  LinkFault fault;
  fault.a = a;
  fault.b = b;
  fault.fail_at = fail_at;
  fault.repair_at = repair_at;
  return fault;
}

std::vector<LinkFault> random_fault_schedule(const net::Topology& topology, double horizon_s,
                                             double failure_rate, double mean_repair_s,
                                             std::uint64_t seed) {
  util::require(horizon_s >= 0.0, "horizon must be non-negative");
  util::require(failure_rate >= 0.0, "failure rate must be non-negative");
  std::vector<LinkFault> schedule;
  if (horizon_s == 0.0 || failure_rate == 0.0) {
    return schedule;  // degenerate but well-defined: nothing ever fails
  }
  util::require(mean_repair_s > 0.0, "mean repair time must be positive");
  des::RandomStream rng(seed);
  // Each duplex link is represented once by its even (first-direction) id.
  for (net::LinkId id = 0; id < topology.link_count(); id += 2) {
    const net::Arc& arc = topology.link(id);
    double t = rng.exponential(1.0 / failure_rate);
    while (t < horizon_s) {
      const double down_for = rng.exponential(mean_repair_s);
      const double repair = std::min(t + down_for, horizon_s + mean_repair_s);
      schedule.push_back(single_fault(arc.from, arc.to, t, repair));
      // Next failure can only begin after the repair completes.
      t = repair + rng.exponential(1.0 / failure_rate);
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const LinkFault& x, const LinkFault& y) { return x.fail_at < y.fail_at; });
  return schedule;
}

}  // namespace anyqos::sim
