#include "src/sim/faults.h"

#include <algorithm>
#include <utility>

#include "src/des/random.h"
#include "src/net/routing.h"
#include "src/util/require.h"

namespace anyqos::sim {

std::vector<std::pair<double, double>> poisson_outages(des::RandomStream& rng, double horizon_s,
                                                       double failure_rate,
                                                       double mean_repair_s) {
  util::require(failure_rate > 0.0, "failure rate must be positive");
  util::require(mean_repair_s > 0.0, "mean repair time must be positive");
  std::vector<std::pair<double, double>> windows;
  // Draw order is a compatibility contract (failure gap, then outage
  // length): link schedules predate this helper being public and must stay
  // byte-identical across versions.
  double t = rng.exponential(1.0 / failure_rate);
  while (t < horizon_s) {
    const double down_for = rng.exponential(mean_repair_s);
    const double repair = std::min(t + down_for, horizon_s + mean_repair_s);
    windows.emplace_back(t, repair);
    // The next failure can only begin after the repair completes.
    t = repair + rng.exponential(1.0 / failure_rate);
  }
  return windows;
}

LinkFault single_fault(net::NodeId a, net::NodeId b, double fail_at, double repair_at) {
  util::require(repair_at > fail_at, "repair must follow failure");
  util::require(fail_at >= 0.0, "failure time must be non-negative");
  LinkFault fault;
  fault.a = a;
  fault.b = b;
  fault.fail_at = fail_at;
  fault.repair_at = repair_at;
  return fault;
}

std::vector<LinkFault> random_fault_schedule(const net::Topology& topology, double horizon_s,
                                             double failure_rate, double mean_repair_s,
                                             std::uint64_t seed) {
  util::require(horizon_s >= 0.0, "horizon must be non-negative");
  util::require(failure_rate >= 0.0, "failure rate must be non-negative");
  std::vector<LinkFault> schedule;
  if (horizon_s == 0.0 || failure_rate == 0.0) {
    return schedule;  // degenerate but well-defined: nothing ever fails
  }
  util::require(mean_repair_s > 0.0, "mean repair time must be positive");
  des::RandomStream rng(seed);
  // Each duplex link is represented once by its even (first-direction) id.
  for (net::LinkId id = 0; id < topology.link_count(); id += 2) {
    const net::Arc& arc = topology.link(id);
    for (const auto& [fail_at, repair_at] :
         poisson_outages(rng, horizon_s, failure_rate, mean_repair_s)) {
      schedule.push_back(single_fault(arc.from, arc.to, fail_at, repair_at));
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const LinkFault& x, const LinkFault& y) { return x.fail_at < y.fail_at; });
  return schedule;
}

NodeFault single_node_fault(net::NodeId node, double fail_at, double repair_at) {
  util::require(repair_at > fail_at, "recovery must follow the crash");
  util::require(fail_at >= 0.0, "crash time must be non-negative");
  NodeFault fault;
  fault.node = node;
  fault.fail_at = fail_at;
  fault.repair_at = repair_at;
  return fault;
}

std::vector<NodeFault> random_node_fault_schedule(const net::Topology& topology,
                                                  double horizon_s, double failure_rate,
                                                  double mean_repair_s, std::uint64_t seed) {
  util::require(horizon_s >= 0.0, "horizon must be non-negative");
  util::require(failure_rate >= 0.0, "failure rate must be non-negative");
  std::vector<NodeFault> schedule;
  if (horizon_s == 0.0 || failure_rate == 0.0) {
    return schedule;  // degenerate but well-defined: nothing ever crashes
  }
  util::require(mean_repair_s > 0.0, "mean repair time must be positive");
  des::RandomStream rng(seed);
  for (net::NodeId node = 0; node < topology.router_count(); ++node) {
    for (const auto& [fail_at, repair_at] :
         poisson_outages(rng, horizon_s, failure_rate, mean_repair_s)) {
      schedule.push_back(single_node_fault(node, fail_at, repair_at));
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const NodeFault& x, const NodeFault& y) { return x.fail_at < y.fail_at; });
  return schedule;
}

std::vector<NodeFault> regional_outage(const net::Topology& topology, net::NodeId epicenter,
                                       std::size_t radius_hops, double fail_at,
                                       double repair_at) {
  util::require(epicenter < topology.router_count(), "epicenter router out of range");
  const std::vector<std::size_t> distance = net::hop_distances(topology, epicenter);
  std::vector<NodeFault> outage;
  for (net::NodeId node = 0; node < topology.router_count(); ++node) {
    if (distance[node] <= radius_hops) {
      outage.push_back(single_node_fault(node, fail_at, repair_at));
    }
  }
  return outage;
}

ScenarioSchedules scenario_schedules(const net::Topology& topology, std::size_t group_size,
                                     double horizon_s, const FaultAxes& axes,
                                     std::uint64_t seed) {
  ScenarioSchedules schedules;
  if (axes.churn_rate > 0.0) {
    schedules.churn = random_churn_schedule(group_size, horizon_s, axes.churn_rate,
                                            axes.churn_mean_down_s, seed + 1);
  }
  if (axes.link_rate > 0.0) {
    schedules.link_faults = random_fault_schedule(topology, horizon_s, axes.link_rate,
                                                  axes.link_mean_repair_s, seed + 2);
  }
  if (axes.node_rate > 0.0) {
    schedules.node_faults = random_node_fault_schedule(topology, horizon_s, axes.node_rate,
                                                       axes.node_mean_repair_s, seed + 3);
  }
  return schedules;
}

}  // namespace anyqos::sim
