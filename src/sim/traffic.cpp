#include "src/sim/traffic.h"

#include "src/util/require.h"

namespace anyqos::sim {

void TrafficModel::validate() const {
  util::require(arrival_rate > 0.0, "arrival rate must be positive");
  util::require(mean_holding_s > 0.0, "mean holding time must be positive");
  util::require(flow_bandwidth_bps > 0.0, "flow bandwidth must be positive");
  util::require(!sources.empty(), "traffic model needs at least one source");
}

ArrivalProcess::ArrivalProcess(const TrafficModel& model, const des::SeedSequence& seeds)
    : model_(model),
      arrivals_(seeds.stream("arrivals")),
      sources_(seeds.stream("sources")),
      holdings_(seeds.stream("holding")) {
  model_.validate();
}

double ArrivalProcess::next_interarrival() {
  return arrivals_.exponential(1.0 / model_.arrival_rate);
}

net::NodeId ArrivalProcess::draw_source() {
  return model_.sources[sources_.uniform_index(model_.sources.size())];
}

double ArrivalProcess::draw_holding() { return holdings_.exponential(model_.mean_holding_s); }

}  // namespace anyqos::sim
