// Fault-schedule generators (extension).
//
// Section 3 assumes a fault-free network and notes the approach "can be
// extended to deal with the situation when this assumption does not hold";
// these helpers produce LinkFault schedules so that extension can be
// exercised by tests and the fault ablation example.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/topology.h"
#include "src/sim/simulation.h"

namespace anyqos::sim {

/// A single outage of the duplex link between `a` and `b`.
LinkFault single_fault(net::NodeId a, net::NodeId b, double fail_at, double repair_at);

/// Random outage schedule: over [0, horizon), each duplex link independently
/// fails as a Poisson process with rate `failure_rate` (per second) and each
/// outage lasts exponential(mean_repair_s). Deterministic in `seed`.
/// Overlapping outages of the same link are merged away (a link that is
/// already down cannot fail again until repaired). Zero rate or zero horizon
/// yields an empty schedule.
std::vector<LinkFault> random_fault_schedule(const net::Topology& topology, double horizon_s,
                                             double failure_rate, double mean_repair_s,
                                             std::uint64_t seed);

/// A single crash/recovery of router `node` (failure-domain plane).
NodeFault single_node_fault(net::NodeId node, double fail_at, double repair_at);

/// Random router crash schedule: the same per-element renewal process as
/// random_fault_schedule — each router independently crashes as a Poisson
/// process with rate `failure_rate` (1 / MTBF, per second) and stays down
/// for exponential(mean_repair_s) (MTTR) — sorted by crash time and
/// deterministic in `seed`. Zero rate or zero horizon yields an empty
/// schedule; per-router outage windows never overlap (a crashed router
/// cannot crash again until it recovered).
std::vector<NodeFault> random_node_fault_schedule(const net::Topology& topology,
                                                  double horizon_s, double failure_rate,
                                                  double mean_repair_s, std::uint64_t seed);

/// Correlated regional outage: every router within `radius_hops` hops of
/// `epicenter` (inclusive; radius 0 = the epicenter alone) crashes at
/// `fail_at` and recovers at `repair_at`. Layer over a random schedule to
/// model a shared-risk event on top of independent failures — the
/// simulation hold-counts overlapping outages of the same element.
std::vector<NodeFault> regional_outage(const net::Topology& topology, net::NodeId epicenter,
                                       std::size_t radius_hops, double fail_at,
                                       double repair_at);

}  // namespace anyqos::sim
