// Fault-schedule generators (extension).
//
// Section 3 assumes a fault-free network and notes the approach "can be
// extended to deal with the situation when this assumption does not hold";
// these helpers produce LinkFault schedules so that extension can be
// exercised by tests and the fault ablation example.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "src/des/random.h"
#include "src/net/topology.h"
#include "src/sim/simulation.h"

namespace anyqos::sim {

/// One element's alternating up/down renewal process over [0, horizon_s):
/// Poisson failures at `failure_rate` (per second), outages lasting
/// exponential(mean_repair_s), the next failure clock starting only after
/// the repair. Repairs are capped at horizon_s + mean_repair_s so a run
/// that drains past the horizon still sees the element come back. This is
/// THE draw-order contract every random schedule in the repo shares — link
/// faults, member churn, node crashes, and the chaosfuzz generator all
/// consume streams through it, so schedules stay byte-identical across
/// generators and versions. Returns (fail_at, repair_at) windows in order;
/// per-element windows never overlap.
std::vector<std::pair<double, double>> poisson_outages(des::RandomStream& rng, double horizon_s,
                                                       double failure_rate,
                                                       double mean_repair_s);

/// A single outage of the duplex link between `a` and `b`.
LinkFault single_fault(net::NodeId a, net::NodeId b, double fail_at, double repair_at);

/// Random outage schedule: over [0, horizon), each duplex link independently
/// fails as a Poisson process with rate `failure_rate` (per second) and each
/// outage lasts exponential(mean_repair_s). Deterministic in `seed`.
/// Overlapping outages of the same link are merged away (a link that is
/// already down cannot fail again until repaired). Zero rate or zero horizon
/// yields an empty schedule.
std::vector<LinkFault> random_fault_schedule(const net::Topology& topology, double horizon_s,
                                             double failure_rate, double mean_repair_s,
                                             std::uint64_t seed);

/// A single crash/recovery of router `node` (failure-domain plane).
NodeFault single_node_fault(net::NodeId node, double fail_at, double repair_at);

/// Random router crash schedule: the same per-element renewal process as
/// random_fault_schedule — each router independently crashes as a Poisson
/// process with rate `failure_rate` (1 / MTBF, per second) and stays down
/// for exponential(mean_repair_s) (MTTR) — sorted by crash time and
/// deterministic in `seed`. Zero rate or zero horizon yields an empty
/// schedule; per-router outage windows never overlap (a crashed router
/// cannot crash again until it recovered).
std::vector<NodeFault> random_node_fault_schedule(const net::Topology& topology,
                                                  double horizon_s, double failure_rate,
                                                  double mean_repair_s, std::uint64_t seed);

/// Correlated regional outage: every router within `radius_hops` hops of
/// `epicenter` (inclusive; radius 0 = the epicenter alone) crashes at
/// `fail_at` and recovers at `repair_at`. Layer over a random schedule to
/// model a shared-risk event on top of independent failures — the
/// simulation hold-counts overlapping outages of the same element.
std::vector<NodeFault> regional_outage(const net::Topology& topology, net::NodeId epicenter,
                                       std::size_t radius_hops, double fail_at,
                                       double repair_at);

/// Every random fault axis of one run in one place (scenario plane). A zero
/// rate disables that axis; the remaining knobs for a disabled axis are
/// ignored.
struct FaultAxes {
  double link_rate = 0.0;           ///< per-duplex-link failures per second
  double link_mean_repair_s = 60.0;
  double churn_rate = 0.0;          ///< per-member outages per second
  double churn_mean_down_s = 120.0;
  double node_rate = 0.0;           ///< per-router crashes per second (1/MTBF)
  double node_mean_repair_s = 120.0;
};

/// The three random schedules of a run, drawn from one seed.
struct ScenarioSchedules {
  std::vector<MemberChurnEvent> churn;
  std::vector<LinkFault> link_faults;
  std::vector<NodeFault> node_faults;
};

/// One seeded builder for every random schedule, shared by dacsim, chaossim,
/// and the chaosfuzz generator so all three agree on draw order: churn draws
/// from seed+1, link faults from seed+2, node faults from seed+3 (each axis
/// gets its own stream, so enabling one never perturbs another). `seed` is
/// the run's master seed — the simulation itself derives its streams by
/// name, so the +1..+3 offsets cannot collide with model draws.
ScenarioSchedules scenario_schedules(const net::Topology& topology, std::size_t group_size,
                                     double horizon_s, const FaultAxes& axes,
                                     std::uint64_t seed);

}  // namespace anyqos::sim
