// Fault-schedule generators (extension).
//
// Section 3 assumes a fault-free network and notes the approach "can be
// extended to deal with the situation when this assumption does not hold";
// these helpers produce LinkFault schedules so that extension can be
// exercised by tests and the fault ablation example.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/topology.h"
#include "src/sim/simulation.h"

namespace anyqos::sim {

/// A single outage of the duplex link between `a` and `b`.
LinkFault single_fault(net::NodeId a, net::NodeId b, double fail_at, double repair_at);

/// Random outage schedule: over [0, horizon), each duplex link independently
/// fails as a Poisson process with rate `failure_rate` (per second) and each
/// outage lasts exponential(mean_repair_s). Deterministic in `seed`.
/// Overlapping outages of the same link are merged away (a link that is
/// already down cannot fail again until repaired). Zero rate or zero horizon
/// yields an empty schedule.
std::vector<LinkFault> random_fault_schedule(const net::Topology& topology, double horizon_s,
                                             double failure_rate, double mean_repair_s,
                                             std::uint64_t seed);

}  // namespace anyqos::sim
