#include "src/sim/flow_table.h"

#include <algorithm>

#include "src/util/annotations.h"
#include "src/util/require.h"

namespace anyqos::sim {

FlowId FlowTable::insert(ActiveFlow flow) {
  const FlowId id = next_id_++;
  flow.id = id;
  flows_.emplace(id, std::move(flow));
  return id;
}

void FlowTable::restore(ActiveFlow flow) {
  util::require(flow.id != 0 && flow.id < next_id_, "restore requires an id this table issued");
  util::require(flows_.find(flow.id) == flows_.end(),
                "flow is already active: " + std::to_string(flow.id));
  const FlowId id = flow.id;
  flows_.emplace(id, std::move(flow));
}

ActiveFlow FlowTable::take(FlowId id) {
  const auto it = flows_.find(id);
  util::require(it != flows_.end(), "flow not active: " + std::to_string(id));
  ActiveFlow flow = std::move(it->second);
  flows_.erase(it);
  return flow;
}

bool FlowTable::contains(FlowId id) const { return flows_.find(id) != flows_.end(); }

const ActiveFlow& FlowTable::get(FlowId id) const {
  const auto it = flows_.find(id);
  util::require(it != flows_.end(), "flow not active: " + std::to_string(id));
  return it->second;
}

std::vector<FlowId> FlowTable::flows_using_link(net::LinkId link) const {
  std::vector<FlowId> ids;
  ANYQOS_DETLINT_ALLOW(unordered_artifact_iteration, "sorted-key extraction");
  for (const auto& [id, flow] : flows_) {
    if (std::find(flow.route.links.begin(), flow.route.links.end(), link) !=
        flow.route.links.end()) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<FlowId> FlowTable::flows_to_member(std::size_t destination_index) const {
  std::vector<FlowId> ids;
  ANYQOS_DETLINT_ALLOW(unordered_artifact_iteration, "sorted-key extraction");
  for (const auto& [id, flow] : flows_) {
    if (flow.destination_index == destination_index) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void FlowTable::for_each(const std::function<void(const ActiveFlow&)>& visit) const {
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  ANYQOS_DETLINT_ALLOW(unordered_artifact_iteration, "sorted-key extraction");
  for (const auto& [id, flow] : flows_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  for (const FlowId id : ids) {
    visit(flows_.at(id));
  }
}

}  // namespace anyqos::sim
