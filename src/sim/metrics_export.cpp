#include "src/sim/metrics_export.h"

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/net/topology.h"
#include "src/signaling/message.h"

namespace anyqos::sim {

void export_metrics(const Simulation& simulation, const SimulationConfig& config,
                    const SimulationResult& result, obs::MetricsRegistry& registry,
                    const obs::Labels& extra) {
  // Base label set shared by every family: the system label plus whatever the
  // caller appends (e.g. the chaos cell index).
  obs::Labels system{{"system", result.system_label}};
  system.insert(system.end(), extra.begin(), extra.end());
  const auto with = [&system](std::initializer_list<obs::Label> more) {
    obs::Labels labels = system;
    labels.insert(labels.end(), more.begin(), more.end());
    return labels;
  };

  auto outcome_counter = [&](const char* outcome, std::uint64_t value) {
    obs::Counter& counter =
        registry.counter("anyqos_requests_total", "Flow requests by final outcome.",
                         with({{"outcome", outcome}}));
    counter.increment(value);
  };
  outcome_counter("admitted", result.admitted);
  outcome_counter("rejected", result.offered - result.admitted);
  if (result.shed > 0) {
    // Shed requests never enter the offered tally (no reservation walk ran),
    // so they get their own outcome row. Gated on non-zero to keep the
    // export byte-identical for runs without a governor.
    outcome_counter("shed", result.shed);
  }

  registry
      .counter("anyqos_flows_dropped_total",
               "Admitted flows torn down early by link faults or member churn.", system)
      .increment(result.dropped);

  auto teardown_counter = [&](const char* cause, std::uint64_t value) {
    registry
        .counter("anyqos_teardowns_total", "Flow teardowns by cause.",
                 with({{"cause", cause}}))
        .increment(value);
  };
  teardown_counter("explicit", result.explicit_teardowns);
  teardown_counter("link_fault", result.dropped_by_fault);
  teardown_counter("churn", result.dropped_by_churn);
  teardown_counter("orphan_reclaim", result.resilience.orphans_reclaimed);

  auto failover_counter = [&](const char* outcome, std::uint64_t value) {
    registry
        .counter("anyqos_failover_total",
                 "Churn-displaced flows re-offered to the surviving members.",
                 with({{"outcome", outcome}}))
        .increment(value);
  };
  failover_counter("admitted", result.failover_admitted);
  failover_counter("rejected", result.failover_attempts - result.failover_admitted);

  if (config.path_repair || config.reconvergence != nullptr || !config.node_faults.empty()) {
    // Failure-domain families appear only when the plane is engaged, keeping
    // the export byte-identical for runs without it (same gate as `shed`).
    auto repair_counter = [&](const char* outcome, std::uint64_t value) {
      registry
          .counter("anyqos_path_repair_total",
                   "Broken flows re-signaled after reconvergence, by outcome.",
                   with({{"outcome", outcome}}))
          .increment(value);
    };
    repair_counter("repaired", result.repaired);
    repair_counter("unrepairable", result.unrepairable);
    registry
        .counter("anyqos_reconvergences_total",
                 "Route-table recomputes committed after topology changes.", system)
        .increment(result.reconvergences);
    registry
        .counter("anyqos_node_outages_total",
                 "Router crash transitions applied (overlaps merged).", system)
        .increment(result.node_outages);
  }

  auto recovery_counter = [&](const char* event, std::uint64_t value) {
    registry
        .counter("anyqos_signaling_recovery_total",
                 "Resilient control-plane recovery events.",
                 with({{"event", event}}))
        .increment(value);
  };
  recovery_counter("timeout", result.resilience.timeouts);
  recovery_counter("retransmit", result.resilience.retransmits);
  recovery_counter("give_up", result.resilience.give_ups);
  recovery_counter("resv_orphan", result.resilience.resv_orphans);
  recovery_counter("tear_orphan", result.resilience.tear_orphans);
  recovery_counter("message_lost", result.resilience.messages_lost);
  recovery_counter("message_killed_by_outage", result.resilience.messages_killed_by_outage);
  registry
      .gauge("anyqos_orphaned_bandwidth_reclaimed_bps",
             "Bandwidth released by soft-state orphan reclamation, summed.", system)
      .set(result.resilience.orphaned_bandwidth_reclaimed_bps);

  registry
      .gauge("anyqos_admission_probability",
             "Fraction of offered requests admitted (paper's AP metric).", system)
      .set(result.admission_probability);
  registry
      .gauge("anyqos_admission_probability_ci_halfwidth",
             "95% batch-means confidence-interval half-width on AP.", system)
      .set(result.admission_ci.half_width);

  // Replay the integer tries-per-request distribution into a le-bucketed
  // histogram; one bucket per possible attempt count keeps it lossless.
  const std::size_t max_attempts =
      std::max<std::size_t>({result.attempts_histogram.max_value(), config.max_tries,
                             std::size_t{1}});
  std::vector<double> bounds;
  bounds.reserve(max_attempts);
  for (std::size_t i = 1; i <= max_attempts; ++i) {
    bounds.push_back(static_cast<double>(i));
  }
  obs::Histogram& attempts = registry.histogram(
      "anyqos_attempts_per_request",
      "Reservation attempts needed per request (paper's retrial metric).", bounds, system);
  for (std::size_t v = 0; v <= result.attempts_histogram.max_value(); ++v) {
    const std::size_t n = result.attempts_histogram.count(v);
    if (n > 0) {
      attempts.observe(static_cast<double>(v), static_cast<std::uint64_t>(n));
    }
  }

  registry
      .gauge("anyqos_messages_per_request_mean",
             "Mean signaling messages (hop traversals) per request.", system)
      .set(result.average_messages);

  for (std::size_t k = 0; k < signaling::kMessageKindCount; ++k) {
    const auto kind = static_cast<signaling::MessageKind>(k);
    registry
        .counter("anyqos_signaling_messages_total",
                 "Signaling hop traversals by message kind.",
                 with({{"kind", signaling::to_string(kind)}}))
        .increment(result.messages.by_kind(kind));
  }

  const net::Topology& topology = simulation.ledger().topology();
  const core::AnycastGroup& group = simulation.group();
  for (std::size_t i = 0; i < result.per_destination_admissions.size(); ++i) {
    const std::string member = i < group.size()
                                   ? topology.router_name(group.member(i))
                                   : "member" + std::to_string(i);
    registry
        .counter("anyqos_admissions_total", "Admitted flows by anycast group member.",
                 with({{"member", member}}))
        .increment(result.per_destination_admissions[i]);
  }

  if (config.kernel_stats != nullptr) {
    // Kernel telemetry families appear only when the sink rode the run,
    // keeping the exposition byte-identical for plain runs (DESIGN.md Â§15).
    config.kernel_stats->export_to(registry, system);
  }

  registry
      .gauge("anyqos_active_flows_avg",
             "Time-averaged number of concurrently active flows.", system)
      .set(result.average_active_flows);
  registry
      .gauge("anyqos_link_utilization_mean",
             "Time-averaged utilization, mean over all links.", system)
      .set(result.mean_link_utilization);
  registry
      .gauge("anyqos_link_utilization_max",
             "Time-averaged utilization of the most loaded link.", system)
      .set(result.max_link_utilization);

  // Instantaneous (end-of-run) per-link anycast utilization from the ledger.
  for (net::LinkId id = 0; id < topology.link_count(); ++id) {
    const net::Arc& arc = topology.link(id);
    const std::string label =
        topology.router_name(arc.from) + "->" + topology.router_name(arc.to);
    registry
        .gauge("anyqos_link_utilization",
               "Anycast-share utilization per directed link at end of run.",
               with({{"link", label}}))
        .set(simulation.ledger().utilization(id));
  }
}

}  // namespace anyqos::sim
