// Independent replications: the standard simulation-methodology wrapper.
//
// A single run's batch-means CI captures within-run variance only; fully
// independent replications (same configuration, different master seeds) also
// capture initialization and seed sensitivity. The figure benches accept a
// --replications flag built on this runner.
#pragma once

#include <cstddef>

#include "src/sim/simulation.h"
#include "src/stats/confidence.h"

namespace anyqos::sim {

/// Aggregate of one scalar metric across replications.
struct ReplicatedMetric {
  double mean = 0.0;
  stats::ConfidenceInterval ci;  ///< Student-t CI across replications
  double min = 0.0;
  double max = 0.0;
};

/// Results of `replications` independent runs of one configuration.
struct ReplicatedResult {
  std::size_t replications = 0;
  ReplicatedMetric admission_probability;
  ReplicatedMetric average_attempts;
  ReplicatedMetric average_messages;
};

/// Runs `config` `replications` times with master seeds seed, seed+1, ...
/// and aggregates the headline metrics at the given confidence level.
/// replications >= 1; with 1 the CI half-width is 0.
ReplicatedResult replicate(const net::Topology& topology, SimulationConfig config,
                           std::size_t replications, double confidence_level = 0.95);

}  // namespace anyqos::sim
