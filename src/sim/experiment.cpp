#include "src/sim/experiment.h"

#include "src/util/require.h"

namespace anyqos::sim {

SimulationConfig ExperimentModel::base_config(double lambda) const {
  util::require(lambda > 0.0, "arrival rate must be positive");
  SimulationConfig config;
  config.traffic.arrival_rate = lambda;
  config.traffic.mean_holding_s = mean_holding_s;
  config.traffic.flow_bandwidth_bps = flow_bandwidth_bps;
  config.traffic.sources = sources;
  config.group_members = group_members;
  config.anycast_share = anycast_share;
  return config;
}

ExperimentModel paper_model() {
  ExperimentModel model;
  model.topology = net::topologies::mci_backbone();
  // "Sources of anycast flows are chosen randomly among those hosts that
  // attach the routers with the odd identification numbers."
  for (net::NodeId id = 1; id < model.topology.router_count(); id += 2) {
    model.sources.push_back(id);
  }
  // "There is an anycast group that consists of 5 members ... hosts which
  // attach to router 0, 4, 8, 12, and 16."
  model.group_members = {0, 4, 8, 12, 16};
  return model;
}

std::vector<SweepPoint> sweep_lambda(
    const ExperimentModel& model, const std::vector<double>& lambdas,
    const std::function<void(SimulationConfig&)>& configure) {
  util::require(!lambdas.empty(), "sweep needs at least one rate");
  std::vector<SweepPoint> points;
  points.reserve(lambdas.size());
  for (const double lambda : lambdas) {
    SimulationConfig config = model.base_config(lambda);
    if (configure) {
      configure(config);
    }
    Simulation simulation(model.topology, config);
    points.push_back(SweepPoint{lambda, simulation.run()});
  }
  return points;
}

std::vector<double> default_lambda_grid() {
  return {5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0};
}

void apply_run_controls(SimulationConfig& config, const RunControls& controls) {
  util::require(controls.measure_s > 0.0, "measurement window must be positive");
  config.warmup_s = controls.warmup_s;
  config.measure_s = controls.measure_s;
  config.seed = controls.seed;
}

}  // namespace anyqos::sim
