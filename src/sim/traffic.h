// Flow-level traffic model (paper Section 5.1).
//
// Requests for anycast flow establishment form a Poisson process with total
// rate lambda; each request's source is drawn uniformly from the source set
// ("chosen randomly among those hosts that attach the routers with the odd
// identification numbers"); flow lifetimes are exponential with mean 180 s;
// every flow requires 64 kbit/s.
#pragma once

#include <vector>

#include "src/des/random.h"
#include "src/net/topology.h"

namespace anyqos::sim {

/// Static description of the offered anycast traffic.
struct TrafficModel {
  double arrival_rate = 0.0;                    ///< total lambda, requests/s
  double mean_holding_s = 180.0;                ///< mean flow lifetime
  net::Bandwidth flow_bandwidth_bps = 64'000.0; ///< per-flow requirement
  std::vector<net::NodeId> sources;             ///< AC-routers receiving requests

  /// Validates all fields; throws std::invalid_argument on nonsense.
  void validate() const;

  /// Offered traffic intensity in erlangs (lambda * mean holding).
  [[nodiscard]] double offered_erlangs() const { return arrival_rate * mean_holding_s; }
};

/// Draws the stochastic primitives of the traffic model from dedicated RNG
/// streams, so that e.g. changing how many flows are admitted does not change
/// the arrival sequence (common random numbers across compared systems).
class ArrivalProcess {
 public:
  /// Streams are derived from `seeds` under fixed names ("arrivals",
  /// "sources", "holding").
  ArrivalProcess(const TrafficModel& model, const des::SeedSequence& seeds);

  /// Time until the next request (exponential, rate lambda).
  double next_interarrival();
  /// Source router of the next request (uniform over the source set).
  net::NodeId draw_source();
  /// Lifetime of an admitted flow (exponential, mean holding time).
  double draw_holding();

  [[nodiscard]] const TrafficModel& model() const { return model_; }

 private:
  TrafficModel model_;
  des::RandomStream arrivals_;
  des::RandomStream sources_;
  des::RandomStream holdings_;
};

}  // namespace anyqos::sim
