// Periodic time-series sampling of simulation state.
//
// Attaches to the DES kernel and samples user-supplied gauges every `period`
// simulated seconds — the standard way to plot active-flow population or
// link utilization over time (e.g. around a fault) rather than as one
// end-of-run average.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/des/simulator.h"

namespace anyqos::sim {

/// One sampled series: name + (time, value) points.
struct TimeSeries {
  std::string name;
  std::vector<double> times;
  std::vector<double> values;

  [[nodiscard]] std::size_t size() const { return times.size(); }
};

/// Samples registered gauges on a fixed simulated-time period.
class TimeSeriesProbe {
 public:
  using Gauge = std::function<double()>;

  /// Sampling starts at `start` and repeats every `period` (> 0) seconds
  /// until the simulator runs out of its horizon. `simulator` must outlive
  /// the probe, and the probe must outlive the simulation run.
  TimeSeriesProbe(des::Simulator& simulator, double start, double period);

  /// Registers a gauge evaluated at every sample instant.
  void add_gauge(std::string name, Gauge gauge);

  /// Begins the periodic sampling (call once, before running).
  void arm();

  /// Stops future sampling (already-recorded points remain).
  void disarm();

  [[nodiscard]] const std::vector<TimeSeries>& series() const { return series_; }
  /// Series by name; throws std::invalid_argument when absent.
  [[nodiscard]] const TimeSeries& series(const std::string& name) const;

 private:
  void sample();

  des::Simulator* simulator_;
  des::EventCategory category_;  // "obs.timeseries" kernel tag
  double start_;
  double period_;
  bool armed_ = false;
  bool stopped_ = false;
  std::vector<Gauge> gauges_;
  std::vector<TimeSeries> series_;
};

}  // namespace anyqos::sim
