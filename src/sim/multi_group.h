// Multiple anycast groups sharing one network (extension).
//
// The paper evaluates a single anycast group; real deployments run many
// (every mirrored service has its own address). Groups interact only through
// the shared link bandwidth, which is exactly what this simulation models:
// each group has its own members, selection algorithm, retry bound and an
// arrival-rate share; reservations come out of one common ledger.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/core/admission.h"
#include "src/des/simulator.h"
#include "src/net/bandwidth.h"
#include "src/net/routing.h"
#include "src/sim/flow_table.h"
#include "src/sim/metrics.h"
#include "src/sim/traffic.h"
#include "src/signaling/probe.h"
#include "src/signaling/rsvp.h"

namespace anyqos::sim {

/// One anycast group's service definition.
struct GroupSpec {
  std::string address;                      ///< display label
  std::vector<net::NodeId> members;         ///< G(A)
  double rate_share = 1.0;                  ///< relative share of total arrivals
  core::SelectionAlgorithm algorithm = core::SelectionAlgorithm::kEvenDistribution;
  std::size_t max_tries = 2;                ///< R
  double alpha = 0.5;                       ///< WD/D+H discount
  net::Bandwidth flow_bandwidth_bps = 64'000.0;  ///< per-flow demand (may differ per group)
};

/// Run description: shared workload knobs + the group list.
struct MultiGroupConfig {
  double total_arrival_rate = 0.0;          ///< requests/s over all groups
  double mean_holding_s = 180.0;
  std::vector<net::NodeId> sources;         ///< shared source set
  double anycast_share = 0.2;
  std::vector<GroupSpec> groups;
  double warmup_s = 2'000.0;
  double measure_s = 10'000.0;
  std::uint64_t seed = 1;
};

/// Per-group outcome plus the traffic-weighted aggregate.
struct MultiGroupResult {
  struct PerGroup {
    std::string address;
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    double admission_probability = 0.0;
    double average_attempts = 0.0;
  };
  std::vector<PerGroup> groups;
  double aggregate_admission_probability = 0.0;
  double mean_link_utilization = 0.0;
};

/// Simulates all groups against one shared BandwidthLedger.
class MultiGroupSimulation {
 public:
  /// `topology` must outlive the simulation.
  MultiGroupSimulation(const net::Topology& topology, MultiGroupConfig config);

  /// Runs warm-up + measurement once.
  MultiGroupResult run();

  [[nodiscard]] const net::BandwidthLedger& ledger() const { return ledger_; }

 private:
  struct GroupRuntime {
    GroupSpec spec;
    std::unique_ptr<core::AnycastGroup> group;
    std::unique_ptr<net::RouteTable> routes;
    std::vector<std::unique_ptr<core::AdmissionController>> controllers;  // by source
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t attempts = 0;
  };

  void schedule_next_arrival();
  void handle_arrival();
  core::AdmissionController& controller_for(GroupRuntime& runtime, net::NodeId source);

  const net::Topology* topology_;
  MultiGroupConfig config_;
  net::BandwidthLedger ledger_;
  signaling::MessageCounter counter_;
  signaling::ReservationProtocol rsvp_;
  signaling::ProbeService probe_;
  des::Simulator simulator_;  ///< owns this run's seed universe (DESIGN.md §12)
  des::EventCategory cat_arrival_;    // "sim.arrival" kernel tag
  des::EventCategory cat_departure_;  // "sim.departure" kernel tag
  des::RandomStream arrival_rng_;
  des::RandomStream source_rng_;
  des::RandomStream holding_rng_;
  des::RandomStream group_rng_;
  des::RandomStream selection_rng_;
  std::vector<GroupRuntime> runtimes_;
  std::vector<double> group_shares_;
  FlowTable flows_;
  bool measuring_ = false;
  bool ran_ = false;
};

}  // namespace anyqos::sim
