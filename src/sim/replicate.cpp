#include "src/sim/replicate.h"

#include "src/stats/accumulator.h"
#include "src/util/require.h"

namespace anyqos::sim {

namespace {

ReplicatedMetric aggregate(const stats::Accumulator& acc, double level) {
  ReplicatedMetric metric;
  metric.mean = acc.mean();
  metric.ci = stats::mean_confidence(acc, level);
  metric.min = acc.min();
  metric.max = acc.max();
  return metric;
}

}  // namespace

ReplicatedResult replicate(const net::Topology& topology, SimulationConfig config,
                           std::size_t replications, double confidence_level) {
  util::require(replications >= 1, "need at least one replication");
  util::require(confidence_level > 0.0 && confidence_level < 1.0,
                "confidence level must be in (0,1)");
  stats::Accumulator ap;
  stats::Accumulator attempts;
  stats::Accumulator messages;
  const std::uint64_t base_seed = config.seed;
  for (std::size_t r = 0; r < replications; ++r) {
    config.seed = base_seed + r;
    Simulation simulation(topology, config);
    const SimulationResult result = simulation.run();
    ap.add(result.admission_probability);
    attempts.add(result.average_attempts);
    messages.add(result.average_messages);
  }
  ReplicatedResult result;
  result.replications = replications;
  result.admission_probability = aggregate(ap, confidence_level);
  result.average_attempts = aggregate(attempts, confidence_level);
  result.average_messages = aggregate(messages, confidence_level);
  return result;
}

}  // namespace anyqos::sim
