// Member-churn schedules (robustness extension).
//
// The paper fixes the recipient group G(A) for a run; real anycast member
// sets churn (maintenance, crashes, scale-down). These helpers produce
// MemberChurnEvent schedules — bounded outages of individual group members —
// that the simulation replays: a down member is excluded from selection,
// flows pinned to it are torn down (and optionally failed over), and on
// recovery it rejoins the selector's candidate set.
#pragma once

#include <cstdint>
#include <vector>

namespace anyqos::sim {

/// A single outage of one anycast group member.
struct MemberChurnEvent {
  std::size_t member_index = 0;  ///< index into the anycast group
  double down_at = 0.0;          ///< outage start (simulated seconds)
  double up_at = 0.0;            ///< recovery; must exceed down_at
};

/// A single member outage with validated times.
MemberChurnEvent single_churn(std::size_t member_index, double down_at, double up_at);

/// Random churn schedule: over [0, horizon), each of `group_size` members
/// independently goes down as a Poisson process with rate `churn_rate` (per
/// second) and stays down for exponential(mean_downtime_s). Deterministic in
/// `seed`. A member that is already down cannot fail again until it has
/// recovered, so per-member outages never overlap. Zero rate or zero horizon
/// yields an empty schedule. Events are sorted by down_at.
std::vector<MemberChurnEvent> random_churn_schedule(std::size_t group_size, double horizon_s,
                                                    double churn_rate, double mean_downtime_s,
                                                    std::uint64_t seed);

}  // namespace anyqos::sim
