// Flow-event tracing: an optional observer stream of everything that happens
// to flows during a run (ns-style trace file), for debugging, plotting
// time series, and validating burst behaviour beyond aggregate metrics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/net/graph.h"

namespace anyqos::sim {

/// What happened to a flow request / active flow.
enum class TraceEventKind : std::uint8_t {
  kAdmitted,   // request admitted and reserved
  kRejected,   // request rejected after its retry budget
  kDeparted,   // flow completed normally and released
  kDropped,    // flow torn down by a link failure or member churn
  kLinkDown,   // a fault took a duplex link out
  kLinkUp,     // a fault repaired
  kMemberDown, // churn took a group member out of service
  kMemberUp,   // a churned member recovered
  kFailover,   // a displaced flow was re-admitted to another member
  kShed,       // request fast-rejected by the governor's signaling budget
  kNodeDown,   // a router crashed (all incident links + co-located members)
  kNodeUp,     // a crashed router recovered
  kReconverged,// the route table recomputed after a topology change
  kRepaired,   // a broken flow was re-signaled onto the new route
  kRepairFailed, // a broken flow could not be repaired and was dropped
};

std::string to_string(TraceEventKind kind);

/// One trace record. Fields not applicable to the kind are left at defaults
/// (e.g. destination for kLinkDown).
struct TraceEvent {
  double time = 0.0;
  TraceEventKind kind = TraceEventKind::kAdmitted;
  /// Request correlation id (the simulation's arrival sequence number; the
  /// same id keys the request's obs::DecisionSpan, so flow traces join
  /// against decision spans). 0 for link events.
  std::uint64_t flow = 0;
  net::NodeId source = net::kInvalidNode;       ///< request source / link endpoint a
  net::NodeId destination = net::kInvalidNode;  ///< member router / link endpoint b
  std::size_t attempts = 0;                     ///< destinations tried (admission events)
  double bandwidth_bps = 0.0;                   ///< requested bandwidth (0 for link events)
  std::size_t active_flows = 0;                 ///< population after the event
};

/// Receives trace events; implementations must tolerate high event rates.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

/// Buffers every event in memory; the workhorse for tests and small runs.
class MemoryTraceSink final : public TraceSink {
 public:
  void record(const TraceEvent& event) override { events_.push_back(event); }

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t count(TraceEventKind kind) const;
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Streams events as CSV rows (`time,kind,flow,source,destination,attempts,
/// bandwidth_bps,active`) with a header, suitable for any plotting tool.
class CsvTraceSink final : public TraceSink {
 public:
  /// `out` must outlive the sink.
  explicit CsvTraceSink(std::ostream& out);

  void record(const TraceEvent& event) override;

 private:
  std::ostream* out_;
};

}  // namespace anyqos::sim
