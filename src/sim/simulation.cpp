#include "src/sim/simulation.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <sstream>
#include <string_view>

#include "src/control/adaptive_retrial.h"
#include "src/core/retrial.h"
#include "src/util/require.h"
#include "src/util/strings.h"

namespace anyqos::sim {

namespace {

std::vector<net::NodeId> checked_members(const std::vector<net::NodeId>& members) {
  util::require(!members.empty(), "simulation needs a non-empty anycast group");
  return members;
}

}  // namespace

Simulation::Simulation(const net::Topology& topology, SimulationConfig config)
    : topology_(&topology),
      config_(std::move(config)),
      group_("anycast://sim", checked_members(config_.group_members)),
      ledger_(topology, config_.anycast_share),
      routes_(topology, config_.group_members),
      simulator_(config_.seed),
      control_rng_(simulator_.stream("control-plane")),
      probe_(ledger_, counter_),
      arrivals_(config_.traffic, simulator_.seeds()),
      selection_rng_(simulator_.stream("selection")),
      metrics_(group_.size(), config_.ci_batches),
      link_utilization_(topology.link_count()) {
  util::require(config_.warmup_s >= 0.0, "warmup must be non-negative");
  util::require(config_.measure_s > 0.0, "measurement window must be positive");
  util::require(config_.drain_max_sim_s >= 0.0, "drain sim-time cap must be non-negative");
  for (const net::NodeId s : config_.traffic.sources) {
    util::require(s < topology.router_count(), "source router out of range");
  }
  for (const net::NodeId m : config_.group_members) {
    util::require(m < topology.router_count(), "group member out of range");
  }
  for (const LinkFault& fault : config_.faults) {
    util::require(topology.find_link(fault.a, fault.b).has_value(),
                  "fault references a non-existent link");
    util::require(fault.repair_at > fault.fail_at, "fault repair must follow failure");
  }
  for (const MemberChurnEvent& event : config_.churn) {
    util::require(event.member_index < group_.size(),
                  "churn event references a member outside the group");
    util::require(event.up_at > event.down_at, "member recovery must follow the outage");
  }
  for (const NodeFault& fault : config_.node_faults) {
    util::require(fault.node < topology.router_count(),
                  "node fault references a router out of range");
    util::require(fault.repair_at > fault.fail_at, "node recovery must follow the crash");
  }

  util::require(!(config_.use_gdi && config_.use_centralized),
                "GDI and centralized baselines are mutually exclusive");
  const bool is_dac = !config_.use_gdi && !config_.use_centralized;
  util::require(is_dac || !config_.resilience.has_value(),
                "resilient signaling applies to DAC runs only");
  util::require(is_dac || config_.churn.empty(), "member churn applies to DAC runs only");
  util::require(is_dac || config_.governor == nullptr,
                "the overload governor applies to DAC runs only");
  util::require(is_dac || config_.node_faults.empty(), "node faults apply to DAC runs only");
  util::require(is_dac || config_.reconvergence == nullptr,
                "routing reconvergence applies to DAC runs only");
  util::require(!config_.path_repair || config_.reconvergence != nullptr,
                "path repair re-signals over post-reconvergence routes; set "
                "config.reconvergence");
  util::require(config_.ops_interval_s > 0.0, "ops poll interval must be positive");
  util::require((config_.ops_mailbox == nullptr && config_.ops_replay.empty()) ||
                    config_.governor != nullptr,
                "ops control (mailbox or replay) steers the governor; set config.governor");
  util::require(config_.ops_mailbox == nullptr || config_.ops_replay.empty(),
                "live ops steering and ops replay are mutually exclusive");
  for (std::size_t i = 1; i < config_.ops_replay.size(); ++i) {
    util::require(config_.ops_replay[i - 1].apply_at <= config_.ops_replay[i].apply_at,
                  "ops replay directives must be sorted by apply time");
  }
  // Kernel category taxonomy for the flow plane (DESIGN.md §15). Interned
  // before any component construction so these always take the low ids;
  // wiring order is fixed, so the table is deterministic per config.
  cat_arrival_ = simulator_.category("sim.arrival");
  cat_departure_ = simulator_.category("sim.departure");
  cat_link_fault_ = simulator_.category("fault.link");
  cat_churn_ = simulator_.category("fault.churn");
  cat_node_fault_ = simulator_.category("fault.node");
  cat_reconverge_ = simulator_.category("net.reconverge");
  cat_ops_poll_ = simulator_.category("ops.poll");
  if (config_.kernel_stats != nullptr) {
    // Attached before any component can schedule: the sink must see every
    // event from the seed calendar on (soft-state refresh and orphan timers
    // start in component constructors), or its counters cannot reconcile.
    config_.kernel_stats->attach(simulator_);
  }
  if (config_.resilience.has_value()) {
    rsvp_ = std::make_unique<signaling::ResilientReservationProtocol>(
        ledger_, counter_, simulator_, control_rng_, *config_.resilience);
    resilient_ = static_cast<signaling::ResilientReservationProtocol*>(rsvp_.get());
  } else {
    rsvp_ = std::make_unique<signaling::ReservationProtocol>(ledger_, counter_);
  }
  duplex_hold_.assign(topology.link_count() / 2, 0);
  duplex_up_.assign(topology.link_count() / 2, 1);
  node_hold_.assign(topology.router_count(), 0);
  if (config_.path_repair) {
    repair_ = std::make_unique<signaling::PathRepair>(*rsvp_);
  }
  if (config_.reconvergence != nullptr) {
    // The policy's delay depends only on the full topology (flooding rounds
    // are bounded by the intact diameter), so price it once up front.
    reconverge_delay_s_ = config_.reconvergence->delay_s(topology);
  }
  if (config_.tracer != nullptr) {
    config_.tracer->set_clock([this] { return simulator_.now(); });
  }
  // Hot-path copies: emit_trace and touch_links check these every event, so
  // keep the nullptr test a member load rather than a config indirection.
  timeline_ = config_.timeline;
  flight_ = config_.flight_recorder;
  governor_ = config_.governor;
  if (governor_ != nullptr) {
    governor_->bind(group_.size(), config_.max_tries);
  }
  if (resilient_ != nullptr && flight_ != nullptr) {
    // Satellite triggers from the recovery machinery: a retransmit-budget
    // give-up or a soft-state orphan expiry lands in the ring as a note and
    // dumps the causal window that led up to it.
    resilient_->set_recovery_hook(
        [this](double time, std::string_view kind, const std::string& detail) {
          flight_->note(time, kind, detail);
          std::string reason(kind);
          reason += ' ';
          reason += detail;
          flight_->trigger(time, reason);
        });
  }
  if (config_.use_gdi) {
    oracle_ = std::make_unique<core::GlobalAdmissionOracle>(topology, ledger_, group_);
  } else if (config_.use_centralized) {
    central_ = std::make_unique<core::CentralizedController>(
        topology, ledger_, group_, routes_, *rsvp_, config_.controller_node,
        config_.controller_rate);
  } else {
    // One AC-router (controller) per distinct source, each with its own
    // selector state — weights and history are local per the paper.
    controllers_.resize(topology.router_count());
  }
}

core::AdmissionController& Simulation::controller_for(net::NodeId source) {
  util::ensure(!config_.use_gdi, "GDI runs have no per-source controllers");
  auto& slot = controllers_[source];
  if (slot == nullptr) {
    core::SelectorEnvironment env;
    env.source = source;
    env.group = &group_;
    env.routes = &routes_;
    env.probe = &probe_;
    env.alpha = config_.alpha;
    env.wdb_mask_infeasible = config_.wdb_mask_infeasible;
    env.flow_bandwidth = config_.traffic.flow_bandwidth_bps;
    // The governor's adaptive bound replaces the static counter policy, and
    // its breakers gate member selection; every AC-router shares the one
    // governor, so control state is system-wide (unlike selector state).
    std::unique_ptr<core::RetrialPolicy> retrial;
    if (governor_ != nullptr && governor_->options().adaptive_retrial) {
      retrial = std::make_unique<control::AdaptiveRetrialPolicy>(*governor_);
    } else {
      retrial = std::make_unique<core::CounterRetrialPolicy>(config_.max_tries);
    }
    slot = std::make_unique<core::AdmissionController>(
        source, group_, routes_, *rsvp_,
        core::make_selector(config_.algorithm, env), std::move(retrial));
    slot->set_observer(admission_observer_);
    slot->set_tracer(config_.tracer);
    if (governor_ != nullptr && governor_->options().member_breakers) {
      slot->set_member_gate(governor_);
    }
  }
  return *slot;
}

void Simulation::set_admission_observer(core::AdmissionObserver* observer) {
  admission_observer_ = observer;
  for (auto& controller : controllers_) {
    if (controller != nullptr) {
      controller->set_observer(observer);
    }
  }
}

std::vector<std::pair<net::NodeId, const core::DestinationSelector*>>
Simulation::active_selectors() const {
  std::vector<std::pair<net::NodeId, const core::DestinationSelector*>> selectors;
  for (const auto& controller : controllers_) {
    if (controller != nullptr) {
      selectors.emplace_back(controller->source(), &controller->selector());
    }
  }
  return selectors;
}

void Simulation::emit_trace(TraceEventKind kind, std::uint64_t flow, net::NodeId source,
                            net::NodeId destination, std::size_t attempts,
                            double bandwidth_bps) {
  if (config_.trace == nullptr && flight_ == nullptr) {
    return;
  }
  TraceEvent event;
  event.time = simulator_.now();
  event.kind = kind;
  event.flow = flow;
  event.source = source;
  event.destination = destination;
  event.attempts = attempts;
  event.bandwidth_bps = bandwidth_bps;
  event.active_flows = flows_.size();
  if (config_.trace != nullptr) {
    config_.trace->record(event);
  }
  if (flight_ != nullptr) {
    std::string detail = "flow=";
    detail += std::to_string(event.flow);
    detail += " src=";
    detail += std::to_string(event.source);
    detail += " dst=";
    if (event.destination == net::kInvalidNode) {
      detail += '-';
    } else {
      detail += std::to_string(event.destination);
    }
    detail += " attempts=";
    detail += std::to_string(event.attempts);
    detail += " bw_bps=";
    detail += util::format_fixed(event.bandwidth_bps, 0);
    detail += " active=";
    detail += std::to_string(event.active_flows);
    flight_->note(event.time, to_string(kind), detail);
  }
}

void Simulation::touch_links(const net::Path& path) {
  const double now = simulator_.now();
  for (const net::LinkId id : path.links) {
    const double utilization = ledger_.utilization(id);
    link_utilization_[id].update(now, utilization);
    if (timeline_ != nullptr) {
      // Feed the per-link high-water mark so a peak between two samples
      // survives into the window's row even after the flow departs.
      timeline_->note(link_hwm_columns_[id], utilization);
    }
    if (governor_ != nullptr) {
      governor_->note_utilization(utilization);
    }
  }
}

void Simulation::wire_timeline() {
  obs::Timeline& tl = *timeline_;
  tl.add_gauge("active_flows", [this] { return static_cast<double>(flows_.size()); });
  tl.add_gauge("reserved_total_bps", [this] { return ledger_.total_reserved(); });
  tl.add_counter("offered_per_s",
                 [this] { return static_cast<double>(metrics_.lifetime_offered()); });
  tl.add_counter("admitted_per_s",
                 [this] { return static_cast<double>(metrics_.lifetime_admitted()); });
  tl.add_counter("rejected_per_s",
                 [this] { return static_cast<double>(metrics_.lifetime_rejected()); });
  tl.add_counter("attempts_per_s",
                 [this] { return static_cast<double>(metrics_.lifetime_attempts()); });
  tl.add_counter("messages_per_s", [this] { return static_cast<double>(counter_.total()); });
  tl.add_counter("retransmits_per_s", [this] {
    return resilient_ != nullptr ? static_cast<double>(resilient_->stats().retransmits) : 0.0;
  });
  tl.add_counter("teardowns_per_s", [this] {
    return static_cast<double>(metrics_.lifetime_teardowns(TeardownCause::kExplicit));
  });
  tl.add_counter("drops_fault_per_s", [this] {
    return static_cast<double>(metrics_.lifetime_teardowns(TeardownCause::kLinkFault));
  });
  tl.add_counter("drops_churn_per_s", [this] {
    return static_cast<double>(metrics_.lifetime_teardowns(TeardownCause::kChurn));
  });
  tl.add_counter("failover_attempts_per_s", [this] {
    return static_cast<double>(metrics_.lifetime_failover_attempts());
  });
  tl.add_counter("failover_admitted_per_s", [this] {
    return static_cast<double>(metrics_.lifetime_failover_admitted());
  });
  if (governor_ != nullptr) {
    tl.add_gauge("governor_effective_r", [this] {
      return static_cast<double>(governor_->effective_max_tries());
    });
    tl.add_gauge("governor_open_breakers",
                 [this] { return static_cast<double>(governor_->open_breakers()); });
    tl.add_counter("shed_per_s",
                   [this] { return static_cast<double>(metrics_.lifetime_shed()); });
  }
  if (config_.kernel_stats != nullptr) {
    // Kernel telemetry columns ride only when the sink is attached, keeping
    // plain runs' timeline artifacts byte-identical (DESIGN.md Â§15).
    tl.add_gauge("kernel_pending",
                 [this] { return static_cast<double>(simulator_.pending_events()); });
    tl.add_counter("kernel_events_per_s", [this] {
      return static_cast<double>(simulator_.dispatched_events());
    });
    tl.add_counter("kernel_tombstones_per_s", [this] {
      return static_cast<double>(simulator_.tombstones_popped());
    });
  }
  if (!config_.node_faults.empty() || config_.reconvergence != nullptr ||
      config_.path_repair) {
    // Failure-domain columns appear only when the plane is engaged, keeping
    // unattached timelines byte-identical (same contract as the governor's).
    tl.add_gauge("routes_stale", [this] { return routes_stale_ ? 1.0 : 0.0; });
    tl.add_gauge("nodes_down", [this] {
      double down = 0.0;
      for (const std::uint32_t hold : node_hold_) {
        down += hold > 0 ? 1.0 : 0.0;
      }
      return down;
    });
    tl.add_counter("repairs_per_s",
                   [this] { return static_cast<double>(metrics_.lifetime_repaired()); });
  }
  const bool is_dac = !config_.use_gdi && !config_.use_centralized;
  for (std::size_t index = 0; index < group_.size(); ++index) {
    const std::string member = topology_->router_name(group_.member(index));
    tl.add_gauge("member_up:" + member,
                 [this, index] { return group_.is_up(index) ? 1.0 : 0.0; });
    if (is_dac) {
      // Paper-facing view of eqs. (2), (4)-(12): each AC-router keeps its own
      // weight vector, so the timeline records the mean weight of this member
      // across every controller instantiated so far.
      tl.add_gauge("weight:" + member, [this, index] {
        double sum = 0.0;
        std::size_t sources = 0;
        for (const auto& [source, selector] : active_selectors()) {
          (void)source;
          const std::vector<double> weights = selector->weights();
          if (index < weights.size()) {
            sum += weights[index];
            ++sources;
          }
        }
        return sources == 0 ? 0.0 : sum / static_cast<double>(sources);
      });
    }
  }
  link_hwm_columns_.assign(topology_->link_count(), 0);
  for (net::LinkId id = 0; id < topology_->link_count(); ++id) {
    const net::Arc& arc = topology_->link(id);
    std::string label = topology_->router_name(arc.from);
    label += "->";
    label += topology_->router_name(arc.to);
    tl.add_gauge("util:" + label, [this, id] { return ledger_.utilization(id); });
    link_hwm_columns_[id] =
        tl.add_watermark("util_hwm:" + label, [this, id] { return ledger_.utilization(id); });
  }
}

bool Simulation::ops_active() const {
  return config_.ops_server != nullptr || config_.ops_mailbox != nullptr ||
         !config_.ops_replay.empty();
}

void Simulation::schedule_ops_poll() {
  simulator_.schedule_in(config_.ops_interval_s, cat_ops_poll_, [this] { ops_poll(); });
}

void Simulation::ops_poll() {
  const double now = simulator_.now();
  // Replay first, then the live mailbox — the two are mutually exclusive in
  // one run, so the ordering only fixes which branch a given run takes.
  while (ops_replay_next_ < config_.ops_replay.size() &&
         config_.ops_replay[ops_replay_next_].apply_at <= now) {
    apply_ops_directive(config_.ops_replay[ops_replay_next_].directive);
    ++ops_replay_next_;
  }
  if (config_.ops_mailbox != nullptr) {
    for (const control::ControlDirective& directive : config_.ops_mailbox->drain()) {
      apply_ops_directive(directive);
    }
  }
  publish_ops();
  if (!draining_) {
    schedule_ops_poll();
  }
}

void Simulation::apply_ops_directive(const control::ControlDirective& directive) {
  // The constructor guarantees a governor whenever directives can arrive.
  const double applied = governor_->apply_directive(directive);
  ++ops_directives_applied_;
  if (config_.ops_log != nullptr) {
    // Stamped with the DES time of *application* — the wall-clock moment the
    // operator posted it is deliberately erased, which is what makes the log
    // replayable byte-identically (DESIGN.md §13).
    config_.ops_log->record(simulator_.now(), directive, applied);
  }
}

void Simulation::publish_ops() {
  if (config_.ops_server == nullptr) {
    return;  // replay or log-only run: apply and log, nothing to serve
  }
  const double now = simulator_.now();
  obs::Labels labels{{"system", system_label(config_)}};
  labels.insert(labels.end(), config_.ops_labels.begin(), config_.ops_labels.end());

  // A fresh registry per publish: gauges are point-in-time reads and the
  // rendered text is swapped into the server whole, so a scrape never sees
  // a half-updated document.
  obs::MetricsRegistry registry;
  registry.gauge("anyqos_sim_time_seconds", "DES clock at publish", labels).set(now);
  registry.gauge("anyqos_sim_draining", "1 once the post-measurement drain began", labels)
      .set(draining_ ? 1.0 : 0.0);
  registry
      .counter("anyqos_events_dispatched_total", "DES events dispatched so far", labels)
      .increment(simulator_.dispatched_events());
  registry.gauge("anyqos_active_flows", "admitted, undeparted flows", labels)
      .set(static_cast<double>(flows_.size()));
  registry
      .gauge("anyqos_reserved_bandwidth_bps", "anycast bandwidth reserved across all links",
             labels)
      .set(ledger_.total_reserved());
  const auto outcome_counter = [&](const char* outcome, std::uint64_t value) {
    obs::Labels with_outcome = labels;
    with_outcome.push_back({"outcome", outcome});
    registry
        .counter("anyqos_requests_observed_total",
                 "requests by outcome, lifetime including warm-up (live view)",
                 std::move(with_outcome))
        .increment(value);
  };
  outcome_counter("offered", metrics_.lifetime_offered());
  outcome_counter("admitted", metrics_.lifetime_admitted());
  outcome_counter("rejected", metrics_.lifetime_rejected());
  outcome_counter("shed", metrics_.lifetime_shed());
  using signaling::MessageKind;
  for (const MessageKind kind :
       {MessageKind::kPath, MessageKind::kResv, MessageKind::kPathErr, MessageKind::kTear,
        MessageKind::kProbe, MessageKind::kProbeReply}) {
    obs::Labels with_kind = labels;
    with_kind.push_back({"kind", signaling::to_string(kind)});
    registry
        .counter("anyqos_signaling_observed_total",
                 "signaling link traversals by kind (resets at measurement start)",
                 std::move(with_kind))
        .increment(counter_.by_kind(kind));
  }
  if (governor_ != nullptr) {
    registry
        .gauge("anyqos_governor_effective_retries", "adaptive retrial bound in force", labels)
        .set(static_cast<double>(governor_->effective_max_tries()));
    registry.gauge("anyqos_governor_retry_ceiling", "operator/static retry ceiling", labels)
        .set(static_cast<double>(governor_->max_tries_ceiling()));
    registry.gauge("anyqos_governor_retry_floor", "AIMD floor", labels)
        .set(static_cast<double>(governor_->min_tries_floor()));
    registry.gauge("anyqos_governor_open_breakers", "members currently masked out", labels)
        .set(static_cast<double>(governor_->open_breakers()));
    if (governor_->shedding()) {
      registry
          .gauge("anyqos_governor_shed_tokens", "signaling-budget tokens left", labels)
          .set(governor_->shed_tokens(now));
    }
    registry.counter("anyqos_governor_windows_total", "feedback windows evaluated", labels)
        .increment(governor_->stats().windows);
    registry
        .counter("anyqos_governor_breaker_trips_total", "breaker transitions into Open",
                 labels)
        .increment(governor_->stats().breaker_trips);
    registry
        .counter("anyqos_ops_directives_applied_total",
                 "runtime control directives applied", labels)
        .increment(ops_directives_applied_);
  }
  for (std::size_t index = 0; index < group_.size(); ++index) {
    obs::Labels with_member = labels;
    with_member.push_back({"member", topology_->router_name(group_.member(index))});
    registry.gauge("anyqos_member_up", "1 while the member is in service", with_member)
        .set(group_.is_up(index) ? 1.0 : 0.0);
  }
  for (net::LinkId id = 0; id < topology_->link_count(); ++id) {
    const net::Arc& arc = topology_->link(id);
    std::string link_name = topology_->router_name(arc.from);
    link_name += "->";
    link_name += topology_->router_name(arc.to);
    obs::Labels with_link = labels;
    with_link.push_back({"link", std::move(link_name)});
    registry
        .gauge("anyqos_link_utilization", "anycast-share utilization at publish",
               std::move(with_link))
        .set(ledger_.utilization(id));
  }
  std::ostringstream prometheus;
  registry.write_prometheus(prometheus);
  config_.ops_server->publish("/metrics", "text/plain; version=0.0.4; charset=utf-8",
                              prometheus.str());

  std::ostringstream status;
  status << "{\"sim_time_s\":" << util::format_fixed(now, 6)
         << ",\"draining\":" << (draining_ ? "true" : "false")
         << ",\"active_flows\":" << flows_.size()
         << ",\"directives_applied\":" << ops_directives_applied_ << ",\"governor\":";
  if (governor_ != nullptr) {
    status << "{\"effective_max_tries\":" << governor_->effective_max_tries()
           << ",\"retry_ceiling\":" << governor_->max_tries_ceiling()
           << ",\"retry_floor\":" << governor_->min_tries_floor()
           << ",\"open_breakers\":" << governor_->open_breakers()
           << ",\"windows\":" << governor_->stats().windows
           << ",\"tighten_steps\":" << governor_->stats().tighten_steps
           << ",\"relax_steps\":" << governor_->stats().relax_steps
           << ",\"shed\":" << governor_->stats().shed
           << ",\"breaker_trips\":" << governor_->stats().breaker_trips
           << ",\"shed_budget_msgs_per_s\":"
           << util::format_fixed(governor_->options().shed_budget_msgs_per_s, 6)
           << ",\"breaker_threshold\":" << governor_->options().breaker.failure_threshold
           << ",\"breaker_cooldown_s\":"
           << util::format_fixed(governor_->options().breaker.cooldown_s, 6)
           << ",\"shed_tokens\":";
    if (governor_->shedding()) {
      status << util::format_fixed(governor_->shed_tokens(now), 6);
    } else {
      status << "null";
    }
    status << '}';
  } else {
    status << "null";
  }
  status << "}\n";
  config_.ops_server->publish("/status", "application/json", status.str());
  config_.ops_server->publish_health(now, simulator_.dispatched_events(), draining_);
}

void Simulation::schedule_next_arrival() {
  simulator_.schedule_in(arrivals_.next_interarrival(), cat_arrival_,
                         [this] { handle_arrival(); });
}

void Simulation::handle_arrival() {
  if (draining_) {
    return;  // quiescence drain: the offered-load process has stopped
  }
  schedule_next_arrival();

  core::FlowRequest request;
  request.source = arrivals_.draw_source();
  request.bandwidth_bps = config_.traffic.flow_bandwidth_bps;
  request.request_id = ++next_request_id_;

  if (governor_ != nullptr && !governor_->admit_request(simulator_.now())) {
    // Signaling budget exhausted: fast-reject with zero messages — the
    // request never reaches the DAC loop, so it is counted as shed, not as
    // offered load (the AC-router answered from local state alone).
    metrics_.record_shed();
    emit_trace(TraceEventKind::kShed, request.request_id, request.source, net::kInvalidNode,
               0, request.bandwidth_bps);
    if (config_.tracer != nullptr && config_.tracer->active()) {
      config_.tracer->begin_request(request.request_id, request.source, request.bandwidth_bps,
                                    "shed", 0, group_.size());
      config_.tracer->end_request(false, std::nullopt, 0);
    }
    return;
  }

  core::AdmissionDecision decision;
  const std::uint64_t path_before =
      governor_ != nullptr ? counter_.by_kind(signaling::MessageKind::kPath) : 0;
  if (config_.use_gdi) {
    decision = oracle_->admit(request);
  } else if (config_.use_centralized) {
    const core::CentralizedDecision central =
        central_->admit(simulator_.now(), request.source, request.bandwidth_bps);
    decision.admitted = central.admitted;
    decision.destination_index = central.destination_index;
    decision.route = central.route;
    decision.attempts = 1;  // the agency decides in one shot
    decision.messages = central.messages;
    if (metrics_.measuring()) {
      decision_delay_.add(central.decision_delay_s);
    }
  } else {
    decision = controller_for(request.source).admit(request, selection_rng_);
  }
  if (governor_ != nullptr) {
    governor_->on_decision(simulator_.now(), decision.admitted,
                           counter_.by_kind(signaling::MessageKind::kPath) - path_before);
  }
  metrics_.record_decision(decision.admitted, decision.attempts, decision.messages,
                           decision.destination_index.value_or(0));
  // Drain control-plane waiting unconditionally so warm-up waits never leak
  // into the first measured request's delay.
  const double control_wait = rsvp_->consume_pending_wait();
  if (metrics_.measuring() && (config_.signaling_hop_delay_s > 0.0 || control_wait > 0.0)) {
    // Message walks are sequential within one request, so the setup delay is
    // the hop count of all its signaling traversals times the per-hop
    // latency, plus whatever the resilient control plane spent waiting
    // (retransmission timeouts, backoff, injected hop delay).
    const double delay =
        static_cast<double>(decision.messages) * config_.signaling_hop_delay_s +
        control_wait;
    setup_delay_.add(delay);
    setup_delay_p95_.add(delay);
  }
  if (!decision.admitted) {
    emit_trace(TraceEventKind::kRejected, request.request_id, request.source,
               net::kInvalidNode, decision.attempts, request.bandwidth_bps);
    return;
  }

  touch_links(decision.route);
  ActiveFlow flow;
  flow.request_id = request.request_id;
  flow.source = request.source;
  flow.destination_index = *decision.destination_index;
  flow.route = decision.route;
  flow.bandwidth_bps = request.bandwidth_bps;
  flow.admitted_at = simulator_.now();
  const FlowId id = flows_.insert(std::move(flow));
  metrics_.record_active_flows(simulator_.now(), flows_.size());
  emit_trace(TraceEventKind::kAdmitted, request.request_id, request.source,
             group_.member(*decision.destination_index), decision.attempts,
             request.bandwidth_bps);

  simulator_.schedule_in(arrivals_.draw_holding(), cat_departure_,
                         [this, id] { handle_departure(id); });
}

void Simulation::handle_departure(FlowId id) {
  if (!flows_.contains(id)) {
    if (repair_ != nullptr && repair_->contains(id)) {
      // The flow's holding time elapsed while it waited for repair: it
      // departs from the queue, releasing whatever remnant it still held.
      const signaling::BrokenFlow flow =
          repair_->resolve(id, signaling::PathRepair::Resolution::kExpired);
      metrics_.record_teardown(TeardownCause::kExplicit);
      if (!flow.remnant.links.empty()) {
        touch_links(flow.remnant);
      }
      metrics_.record_active_flows(simulator_.now(), flows_.size());
      emit_trace(TraceEventKind::kDeparted, flow.request_id, flow.source,
                 group_.member(flow.destination_index), 0, flow.bandwidth_bps);
    }
    return;  // the flow was torn down earlier by a link failure
  }
  const ActiveFlow flow = flows_.take(id);
  if (config_.use_gdi) {
    ledger_.release(flow.route, flow.bandwidth_bps);
  } else {
    // CTRL also tears via RSVP. Under the resilient protocol the TEAR may be
    // lost, deferring the release to soft-state orphan reclamation.
    rsvp_->teardown(flow.route, flow.bandwidth_bps);
  }
  metrics_.record_teardown(TeardownCause::kExplicit);
  touch_links(flow.route);
  metrics_.record_active_flows(simulator_.now(), flows_.size());
  emit_trace(TraceEventKind::kDeparted, flow.request_id, flow.source,
             group_.member(flow.destination_index), 0, flow.bandwidth_bps);
}

void Simulation::drop_flows_on_link(net::LinkId link) {
  for (const FlowId id : flows_.flows_using_link(link)) {
    ActiveFlow flow = flows_.take(id);
    if (repair_ != nullptr && node_hold_[flow.source] == 0) {
      // Path repair: instead of dropping, park the flow in the repair queue
      // holding its surviving links (make-before-break capital). The failing
      // link itself is narrowed out so the ledger can take it out of service.
      // Flows sourced at a crashed router fall through to the plain drop —
      // the AC router that would re-signal them is gone.
      signaling::BrokenFlow broken;
      broken.flow_id = flow.id;
      broken.request_id = flow.request_id;
      broken.source = flow.source;
      broken.destination_index = flow.destination_index;
      broken.bandwidth_bps = flow.bandwidth_bps;
      broken.admitted_at = flow.admitted_at;
      broken.broken_at = simulator_.now();
      for (const net::LinkId survivor : flow.route.links) {
        if (survivor != link) {
          broken.remnant.links.push_back(survivor);
        }
      }
      repair_->add(std::move(broken), flow.route);
      touch_links(flow.route);
      continue;  // outcome (kRepaired / kRepairFailed / kDeparted) traces later
    }
    if (config_.use_gdi) {
      ledger_.release(flow.route, flow.bandwidth_bps);
    } else {
      // The link is about to be taken out of service and the ledger requires
      // it idle, so the release must commit now — a lossy TEAR would leave
      // bandwidth reserved on a failed link.
      rsvp_->force_teardown(flow.route, flow.bandwidth_bps);
    }
    touch_links(flow.route);
    metrics_.record_dropped_flow();
    emit_trace(TraceEventKind::kDropped, flow.request_id, flow.source,
               group_.member(flow.destination_index), 0, flow.bandwidth_bps);
  }
  metrics_.record_active_flows(simulator_.now(), flows_.size());
}

bool Simulation::take_duplex_down(net::LinkId forward) {
  const std::size_t duplex = forward / 2;
  if (++duplex_hold_[duplex] > 1 && !config_.defeat_duplex_idempotency) {
    return false;  // already out of service under an overlapping outage
  }
  duplex_up_[duplex] = 0;
  const net::LinkId backward = topology_->reverse_link(forward);
  drop_flows_on_link(forward);
  drop_flows_on_link(backward);
  // Orphaned (soft-state) reservations crossing the link vanish with it, and
  // queued broken flows shed the dying link from their held remnants — both
  // before fail_link, which requires the directed links idle.
  rsvp_->on_link_failing(forward);
  rsvp_->on_link_failing(backward);
  if (repair_ != nullptr) {
    repair_->on_link_failing(forward);
    repair_->on_link_failing(backward);
  }
  ledger_.fail_link(forward);
  ledger_.fail_link(backward);
  const double now = simulator_.now();
  link_utilization_[forward].update(now, 1.0);
  link_utilization_[backward].update(now, 1.0);
  if (timeline_ != nullptr) {
    // A failed link reads utilization 1.0; note it so the high-water column
    // shows the outage even when the repair lands within the same window.
    timeline_->note(link_hwm_columns_[forward], 1.0);
    timeline_->note(link_hwm_columns_[backward], 1.0);
  }
  note_topology_change();
  // Trace the transition here so link kills from a node crash are visible
  // exactly like scheduled link faults.
  const net::Arc& arc = topology_->link(forward);
  emit_trace(TraceEventKind::kLinkDown, 0, arc.from, arc.to, 0, 0.0);
  return true;
}

bool Simulation::bring_duplex_up(net::LinkId forward) {
  const std::size_t duplex = forward / 2;
  util::ensure(duplex_hold_[duplex] > 0, "duplex repair without a matching outage");
  if (--duplex_hold_[duplex] > 0) {
    return false;  // another overlapping outage still holds the link down
  }
  duplex_up_[duplex] = 1;
  const net::LinkId backward = topology_->reverse_link(forward);
  ledger_.restore_link(forward);
  ledger_.restore_link(backward);
  const double now = simulator_.now();
  link_utilization_[forward].update(now, 0.0);
  link_utilization_[backward].update(now, 0.0);
  note_topology_change();
  const net::Arc& arc = topology_->link(forward);
  emit_trace(TraceEventKind::kLinkUp, 0, arc.from, arc.to, 0, 0.0);
  return true;
}

void Simulation::apply_fault(const LinkFault& fault) {
  const net::LinkId forward = *topology_->find_link(fault.a, fault.b);
  if (!take_duplex_down(forward)) {
    return;  // overlapping schedules (or the enclosing node is down)
  }
  if (flight_ != nullptr) {
    // Dump after the drops so the snapshot carries the victims' final events.
    std::string reason = "link_fault ";
    reason += std::to_string(fault.a);
    reason += "->";
    reason += std::to_string(fault.b);
    flight_->trigger(simulator_.now(), reason);
  }
}

void Simulation::repair_fault(const LinkFault& fault) {
  const net::LinkId forward = *topology_->find_link(fault.a, fault.b);
  (void)bring_duplex_up(forward);  // no-op while an overlapping outage holds it
}

void Simulation::apply_node_down(const NodeFault& fault) {
  if (++node_hold_[fault.node] > 1) {
    return;  // overlapping outages: the router is already down
  }
  ++node_outages_;
  emit_trace(TraceEventKind::kNodeDown, 0, fault.node, net::kInvalidNode, 0, 0.0);
  // Co-located group members die with the router. Their flows' endpoints are
  // gone even where the route survives, so they tear down as churn does —
  // but failover is deferred until after the incident links fail, so a
  // re-admission walks the (stale) routes against the true post-crash
  // network and fails realistically with PATH_ERR where they cross it.
  std::vector<ActiveFlow> displaced;
  for (std::size_t member = 0; member < group_.size(); ++member) {
    if (group_.member(member) != fault.node || !group_.is_up(member)) {
      continue;
    }
    group_.set_member_up(member, false);
    if (governor_ != nullptr) {
      // Trip the breaker with the crash: when the router recovers the member
      // stays masked until the cooldown's half-open probe proves it healthy.
      governor_->on_member_churn(member);
    }
    emit_trace(TraceEventKind::kMemberDown, 0, fault.node, net::kInvalidNode, 0, 0.0);
    for (const FlowId id : flows_.flows_to_member(member)) {
      ActiveFlow flow = flows_.take(id);
      rsvp_->teardown(flow.route, flow.bandwidth_bps);
      touch_links(flow.route);
      metrics_.record_teardown(TeardownCause::kChurn);
      emit_trace(TraceEventKind::kDropped, flow.request_id, flow.source,
                 group_.member(flow.destination_index), 0, flow.bandwidth_bps);
      if (config_.failover_readmit && !draining_) {
        displaced.push_back(std::move(flow));
      }
    }
  }
  // Every incident duplex link fails atomically with the crash; transit
  // flows crossing the router are dropped (or queued for repair) here.
  for (net::LinkId id = 0; id < topology_->link_count(); id += 2) {
    const net::Arc& arc = topology_->link(id);
    if (arc.from == fault.node || arc.to == fault.node) {
      take_duplex_down(id);
    }
  }
  for (const ActiveFlow& flow : displaced) {
    if (node_hold_[flow.source] > 0) {
      continue;  // the AC-router that would re-signal crashed too
    }
    attempt_failover(flow);
  }
  metrics_.record_active_flows(simulator_.now(), flows_.size());
  if (flight_ != nullptr) {
    // After the teardown/failover cascade: the snapshot carries every
    // victim's final events and any re-admission spans.
    std::string reason = "node_crash node=";
    reason += std::to_string(fault.node);
    flight_->trigger(simulator_.now(), reason);
  }
}

void Simulation::apply_node_up(const NodeFault& fault) {
  util::ensure(node_hold_[fault.node] > 0, "node recovery without a matching crash");
  if (--node_hold_[fault.node] > 0) {
    return;  // another overlapping outage still holds the router down
  }
  for (net::LinkId id = 0; id < topology_->link_count(); id += 2) {
    const net::Arc& arc = topology_->link(id);
    if (arc.from == fault.node || arc.to == fault.node) {
      bring_duplex_up(id);
    }
  }
  for (std::size_t member = 0; member < group_.size(); ++member) {
    if (group_.member(member) == fault.node && !group_.is_up(member)) {
      group_.set_member_up(member, true);
      emit_trace(TraceEventKind::kMemberUp, 0, fault.node, net::kInvalidNode, 0, 0.0);
    }
  }
  emit_trace(TraceEventKind::kNodeUp, 0, fault.node, net::kInvalidNode, 0, 0.0);
}

void Simulation::note_topology_change() {
  if (config_.reconvergence == nullptr) {
    return;  // the paper's static-route model: tables never react
  }
  routes_stale_ = true;
  const std::uint64_t generation = ++route_generation_;
  // Restart semantics: every change re-arms the full convergence delay, and
  // a superseded timer no-ops — a burst of changes (a node crash failing
  // several links at once) converges once, after its last change.
  simulator_.schedule_in(reconverge_delay_s_, cat_reconverge_, [this, generation] {
    if (generation != route_generation_) {
      return;
    }
    reconverge();
  });
}

void Simulation::reconverge() {
  routes_.recompute(*topology_, duplex_up_);
  routes_stale_ = false;
  ++reconvergences_;
  emit_trace(TraceEventKind::kReconverged, 0, net::kInvalidNode, net::kInvalidNode, 0, 0.0);
  if (repair_ != nullptr) {
    run_repair_pass();
  }
}

void Simulation::run_repair_pass() {
  for (const FlowId id : repair_->pending_ids()) {
    const signaling::BrokenFlow& broken = repair_->broken(id);
    const std::size_t member = broken.destination_index;
    // Make-before-break: reserve the fresh route while the remnant is still
    // held, then resolve() releases the remnant. When nothing survived the
    // outage this degrades to break-before-make (tallied by the service).
    bool admitted = false;
    net::Path route;
    const std::uint64_t messages_before = counter_.total();
    if (config_.tracer != nullptr && config_.tracer->active()) {
      config_.tracer->begin_request(broken.request_id, broken.source, broken.bandwidth_bps,
                                    "repair", 0, group_.size());
    }
    if (group_.is_up(member) && routes_.has_route(broken.source, member)) {
      route = routes_.route(broken.source, member);
      admitted = rsvp_->reserve(route, broken.bandwidth_bps).admitted;
      (void)rsvp_->consume_pending_wait();  // repair waits stay out of setup delay
      if (!admitted && !broken.remnant.links.empty()) {
        // Break-before-make fallback: the remnant's own bandwidth blocks the
        // fresh reserve on links the old and new routes share, so surrender
        // it and retry once against the freed capacity.
        const net::Path surrendered = broken.remnant;
        repair_->surrender_remnant(id);
        touch_links(surrendered);
        admitted = rsvp_->reserve(route, broken.bandwidth_bps).admitted;
        (void)rsvp_->consume_pending_wait();
      }
    }
    if (config_.tracer != nullptr && config_.tracer->active()) {
      config_.tracer->end_request(admitted,
                                  admitted ? std::optional<std::size_t>(member) : std::nullopt,
                                  counter_.total() - messages_before);
    }
    if (admitted) {
      const signaling::BrokenFlow done =
          repair_->resolve(id, signaling::PathRepair::Resolution::kRepaired);
      ActiveFlow flow;
      flow.id = id;
      flow.request_id = done.request_id;
      flow.source = done.source;
      flow.destination_index = done.destination_index;
      flow.route = route;
      flow.bandwidth_bps = done.bandwidth_bps;
      flow.admitted_at = done.admitted_at;
      flows_.restore(std::move(flow));  // keeps the armed departure timer valid
      touch_links(route);
      metrics_.record_repair(true);
      emit_trace(TraceEventKind::kRepaired, done.request_id, done.source,
                 group_.member(member), 0, done.bandwidth_bps);
    } else {
      const signaling::BrokenFlow done =
          repair_->resolve(id, signaling::PathRepair::Resolution::kUnrepairable);
      if (!done.remnant.links.empty()) {
        touch_links(done.remnant);
      }
      metrics_.record_dropped_flow();
      metrics_.record_repair(false);
      emit_trace(TraceEventKind::kRepairFailed, done.request_id, done.source,
                 group_.member(member), 0, done.bandwidth_bps);
    }
  }
  metrics_.record_active_flows(simulator_.now(), flows_.size());
}

void Simulation::apply_member_down(std::size_t member) {
  if (!group_.is_up(member)) {
    return;  // overlapping schedules: already down
  }
  // Exclude the member from selection *before* tearing flows down so any
  // failover re-admission can only land on the surviving members.
  group_.set_member_up(member, false);
  if (governor_ != nullptr) {
    // Trip the breaker with the outage: when the member recovers it stays
    // masked until the cooldown's half-open probe proves it healthy.
    governor_->on_member_churn(member);
  }
  emit_trace(TraceEventKind::kMemberDown, 0, group_.member(member), net::kInvalidNode, 0, 0.0);
  for (const FlowId id : flows_.flows_to_member(member)) {
    const ActiveFlow flow = flows_.take(id);
    // The route's links are all still in service — only the endpoint died —
    // so the normal (possibly lossy) TEAR path applies; a lost TEAR becomes
    // an orphan that soft-state expiry reclaims.
    rsvp_->teardown(flow.route, flow.bandwidth_bps);
    touch_links(flow.route);
    metrics_.record_teardown(TeardownCause::kChurn);
    emit_trace(TraceEventKind::kDropped, flow.request_id, flow.source,
               group_.member(flow.destination_index), 0, flow.bandwidth_bps);
    if (config_.failover_readmit && !draining_) {
      attempt_failover(flow);
    }
  }
  metrics_.record_active_flows(simulator_.now(), flows_.size());
  if (flight_ != nullptr) {
    // After the teardown/failover loop: the snapshot includes every displaced
    // flow's drop (and any failover re-admission spans) as its final entries.
    std::string reason = "member_churn member=";
    reason += std::to_string(member);
    reason += " node=";
    reason += std::to_string(group_.member(member));
    flight_->trigger(simulator_.now(), reason);
  }
}

void Simulation::apply_member_up(std::size_t member) {
  if (group_.is_up(member)) {
    return;
  }
  if (node_hold_[group_.member(member)] > 0) {
    return;  // the member's router is crashed; node recovery will revive it
  }
  group_.set_member_up(member, true);
  emit_trace(TraceEventKind::kMemberUp, 0, group_.member(member), net::kInvalidNode, 0, 0.0);
}

void Simulation::attempt_failover(const ActiveFlow& displaced) {
  // Re-offer the displaced flow through the normal admission procedure as a
  // fresh request: new id (it gets its own decision span), and — holding
  // times being exponential, hence memoryless — a fresh holding draw.
  core::FlowRequest request;
  request.source = displaced.source;
  request.bandwidth_bps = displaced.bandwidth_bps;
  request.request_id = ++next_request_id_;
  // Failover is exempt from shedding (dropping an already-admitted user is
  // worse than spending signaling) but its walk still pays the budget and
  // its outcome still feeds the feedback window — it is real load.
  const std::uint64_t path_before =
      governor_ != nullptr ? counter_.by_kind(signaling::MessageKind::kPath) : 0;
  const core::AdmissionDecision decision =
      controller_for(request.source).admit(request, selection_rng_);
  if (governor_ != nullptr) {
    governor_->on_decision(simulator_.now(), decision.admitted,
                           counter_.by_kind(signaling::MessageKind::kPath) - path_before);
  }
  metrics_.record_failover(decision.admitted);
  // Failover is not offered load: its control-plane waiting stays out of the
  // per-request setup-delay statistics, but must still be drained.
  (void)rsvp_->consume_pending_wait();
  if (!decision.admitted) {
    return;
  }
  touch_links(decision.route);
  ActiveFlow flow;
  flow.request_id = request.request_id;
  flow.source = request.source;
  flow.destination_index = *decision.destination_index;
  flow.route = decision.route;
  flow.bandwidth_bps = request.bandwidth_bps;
  flow.admitted_at = simulator_.now();
  const FlowId id = flows_.insert(std::move(flow));
  emit_trace(TraceEventKind::kFailover, request.request_id, request.source,
             group_.member(*decision.destination_index), decision.attempts,
             request.bandwidth_bps);
  simulator_.schedule_in(arrivals_.draw_holding(), cat_departure_,
                         [this, id] { handle_departure(id); });
}

std::string Simulation::system_label(const SimulationConfig& config) {
  if (config.use_gdi) {
    return "GDI";
  }
  if (config.use_centralized) {
    std::string label = "CTRL@";  // append form: GCC 12 -Wrestrict, PR 105329
    label += std::to_string(config.controller_node);
    return label;
  }
  if (config.algorithm == core::SelectionAlgorithm::kShortestPath && config.max_tries == 1) {
    return "SP";
  }
  std::string label = "<";
  label += core::to_string(config.algorithm);
  label += ',';
  label += std::to_string(config.max_tries);
  label += '>';
  return label;
}

SimulationResult Simulation::run() {
  util::require(!ran_, "a Simulation instance runs once; construct a fresh one");
  ran_ = true;

  if (config_.profiler != nullptr) {
    config_.profiler->attach(simulator_, [this] { return flows_.size(); });
  }
  if (timeline_ != nullptr) {
    // Register columns before the first event so the artifact's schema is
    // independent of what the run does, then install the sample event. The
    // rearm guard mirrors the auditor's checkpoint: a draining run must be
    // able to empty its calendar.
    wire_timeline();
    timeline_->attach(simulator_, [this] { return draining_; });
  }
  if (governor_ != nullptr) {
    // The window timer stops rearming at drain; breaker cooldowns are
    // one-shot and still fire, so no breaker is left open at quiescence.
    governor_->attach(simulator_, [this] { return draining_; });
  }
  if (ops_active()) {
    // Scheduled right after the governor's window timer so that when the
    // poll interval equals the window, the shared-timestamp tie breaks the
    // same way in live and replay runs: window step first, directives after.
    schedule_ops_poll();
    // Publish once before the first event so early scrapes see documents.
    publish_ops();
  }
  // Seed the event calendar.
  schedule_next_arrival();
  for (const LinkFault& fault : config_.faults) {
    simulator_.schedule_at(fault.fail_at, cat_link_fault_,
                           [this, fault] { apply_fault(fault); });
    simulator_.schedule_at(fault.repair_at, cat_link_fault_,
                           [this, fault] { repair_fault(fault); });
  }
  for (const MemberChurnEvent& event : config_.churn) {
    simulator_.schedule_at(event.down_at, cat_churn_,
                           [this, event] { apply_member_down(event.member_index); });
    simulator_.schedule_at(event.up_at, cat_churn_,
                           [this, event] { apply_member_up(event.member_index); });
  }
  for (const NodeFault& fault : config_.node_faults) {
    simulator_.schedule_at(fault.fail_at, cat_node_fault_,
                           [this, fault] { apply_node_down(fault); });
    simulator_.schedule_at(fault.repair_at, cat_node_fault_,
                           [this, fault] { apply_node_up(fault); });
  }
  // Initialize utilization tracking at t = 0 so time averages cover the run.
  for (net::LinkId id = 0; id < topology_->link_count(); ++id) {
    link_utilization_[id].update(0.0, 0.0);
  }

  // Warm-up: run, then discard counters and restart integrals.
  {
    std::optional<obs::EngineProfiler::PhaseScope> timed;
    if (config_.profiler != nullptr) {
      timed.emplace(config_.profiler->phase("warmup"));
    }
    simulator_.run_until(config_.warmup_s);
  }
  counter_.reset();
  metrics_.begin_measurement(simulator_.now());
  if (timeline_ != nullptr) {
    // After counter_.reset(): counter columns re-baseline here so the reset
    // cannot read as a negative per-window message rate.
    timeline_->mark_measurement_start(simulator_.now());
  }
  metrics_.record_active_flows(simulator_.now(), flows_.size());
  for (net::LinkId id = 0; id < topology_->link_count(); ++id) {
    link_utilization_[id].restart(simulator_.now());
    link_utilization_[id].update(simulator_.now(), ledger_.utilization(id));
  }

  const double end_time = config_.warmup_s + config_.measure_s;
  {
    std::optional<obs::EngineProfiler::PhaseScope> timed;
    if (config_.profiler != nullptr) {
      timed.emplace(config_.profiler->phase("measure"));
    }
    simulator_.run_until(end_time);
  }
  if (config_.drain_to_quiescence) {
    // Stop offering new flows and run the calendar dry: departures, orphan
    // reclaims, link repairs, and member recoveries all complete. A clean
    // run ends with zero reserved bandwidth everywhere.
    std::optional<obs::EngineProfiler::PhaseScope> timed;
    if (config_.profiler != nullptr) {
      timed.emplace(config_.profiler->phase("drain"));
    }
    draining_ = true;
    if (config_.drain_max_events == 0 && config_.drain_max_sim_s == 0.0) {
      simulator_.run();
    } else {
      // Watchdog-capped drain: bound simulated time and/or dispatched
      // events so a drain that never quiesces (a bug, by definition, once
      // arrivals have stopped) surfaces as a diagnosable trip instead of a
      // hung process. A capped drain that completes is byte-identical to an
      // unbounded one (run_bounded leaves the clock at the last event).
      const double cap_time = config_.drain_max_sim_s > 0.0
                                  ? end_time + config_.drain_max_sim_s
                                  : std::numeric_limits<double>::infinity();
      drain_watchdog_.drained_events =
          simulator_.run_bounded(cap_time, config_.drain_max_events);
      if (simulator_.pending_events() > 0) {
        drain_watchdog_.tripped = true;
        drain_watchdog_.reason = (config_.drain_max_events > 0 &&
                                  drain_watchdog_.drained_events >= config_.drain_max_events)
                                     ? "event budget exhausted"
                                     : "sim-time cap reached";
        drain_watchdog_.pending_events = simulator_.pending_events();
        drain_watchdog_.active_flows = flows_.size();
        drain_watchdog_.sim_time_s = simulator_.now();
        if (flight_ != nullptr) {
          flight_->trigger(simulator_.now(), "drain_watchdog " + drain_watchdog_.reason);
        }
      }
    }
  }
  // Drained runs extend past the nominal window; time averages must cover
  // the extension or the integrals would double-count the tail.
  const double horizon = std::max(end_time, simulator_.now());

  SimulationResult result;
  result.system_label = system_label(config_);
  result.admission_probability = metrics_.admission_probability();
  result.admission_ci = metrics_.admission_ci(0.95);
  result.average_attempts = metrics_.average_attempts();
  result.attempts_histogram = metrics_.attempts_histogram();
  result.average_messages = metrics_.average_messages();
  result.offered = metrics_.offered();
  result.admitted = metrics_.admitted();
  result.dropped = metrics_.dropped_flows();
  result.dropped_by_fault = metrics_.teardowns(TeardownCause::kLinkFault);
  result.dropped_by_churn = metrics_.teardowns(TeardownCause::kChurn);
  result.explicit_teardowns = metrics_.teardowns(TeardownCause::kExplicit);
  result.failover_attempts = metrics_.failover_attempts();
  result.failover_admitted = metrics_.failover_admitted();
  result.shed = metrics_.shed();
  result.repaired = metrics_.repaired();
  result.unrepairable = metrics_.unrepairable();
  result.reconvergences = reconvergences_;
  result.node_outages = node_outages_;
  if (resilient_ != nullptr) {
    result.resilience = resilient_->stats();
  }
  result.per_destination_admissions = metrics_.per_destination_admissions();
  result.average_active_flows = metrics_.average_active_flows(horizon);
  result.messages = counter_;
  result.average_decision_delay_s = decision_delay_.mean();
  result.average_setup_delay_s = setup_delay_.mean();
  result.p95_setup_delay_s = setup_delay_.count() > 0 ? setup_delay_p95_.value() : 0.0;

  stats::Accumulator utilization;
  double max_util = 0.0;
  for (net::LinkId id = 0; id < topology_->link_count(); ++id) {
    const double u = link_utilization_[id].mean(horizon);
    utilization.add(u);
    max_util = std::max(max_util, u);
  }
  result.mean_link_utilization = utilization.mean();
  result.max_link_utilization = max_util;
  return result;
}

}  // namespace anyqos::sim
