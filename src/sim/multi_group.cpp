#include "src/sim/multi_group.h"

#include "src/core/retrial.h"
#include "src/stats/accumulator.h"
#include "src/util/require.h"

namespace anyqos::sim {

MultiGroupSimulation::MultiGroupSimulation(const net::Topology& topology,
                                           MultiGroupConfig config)
    : topology_(&topology),
      config_(std::move(config)),
      ledger_(topology, config_.anycast_share),
      rsvp_(ledger_, counter_),
      probe_(ledger_, counter_),
      simulator_(config_.seed),
      cat_arrival_(simulator_.category("sim.arrival")),
      cat_departure_(simulator_.category("sim.departure")),
      arrival_rng_(simulator_.stream("arrivals")),
      source_rng_(simulator_.stream("sources")),
      holding_rng_(simulator_.stream("holding")),
      group_rng_(simulator_.stream("groups")),
      selection_rng_(simulator_.stream("selection")) {
  util::require(config_.total_arrival_rate > 0.0, "arrival rate must be positive");
  util::require(config_.mean_holding_s > 0.0, "holding time must be positive");
  util::require(!config_.sources.empty(), "need at least one source");
  util::require(!config_.groups.empty(), "need at least one group");
  util::require(config_.measure_s > 0.0, "measurement window must be positive");
  for (const net::NodeId s : config_.sources) {
    util::require(s < topology.router_count(), "source router out of range");
  }
  double share_total = 0.0;
  for (const GroupSpec& spec : config_.groups) {
    util::require(spec.rate_share > 0.0, "group rate shares must be positive");
    util::require(spec.flow_bandwidth_bps > 0.0, "group flow bandwidth must be positive");
    share_total += spec.rate_share;
  }
  util::ensure(share_total > 0.0, "total share must be positive");
  for (const GroupSpec& spec : config_.groups) {
    group_shares_.push_back(spec.rate_share / share_total);
    GroupRuntime runtime;
    runtime.spec = spec;
    runtime.group = std::make_unique<core::AnycastGroup>(spec.address, spec.members);
    runtime.routes = std::make_unique<net::RouteTable>(topology, spec.members);
    runtime.controllers.resize(topology.router_count());
    runtimes_.push_back(std::move(runtime));
  }
}

core::AdmissionController& MultiGroupSimulation::controller_for(GroupRuntime& runtime,
                                                                net::NodeId source) {
  auto& slot = runtime.controllers[source];
  if (slot == nullptr) {
    core::SelectorEnvironment env;
    env.source = source;
    env.group = runtime.group.get();
    env.routes = runtime.routes.get();
    env.probe = &probe_;
    env.alpha = runtime.spec.alpha;
    env.flow_bandwidth = runtime.spec.flow_bandwidth_bps;
    slot = std::make_unique<core::AdmissionController>(
        source, *runtime.group, *runtime.routes, rsvp_,
        core::make_selector(runtime.spec.algorithm, env),
        std::make_unique<core::CounterRetrialPolicy>(runtime.spec.max_tries));
  }
  return *slot;
}

void MultiGroupSimulation::schedule_next_arrival() {
  simulator_.schedule_in(arrival_rng_.exponential(1.0 / config_.total_arrival_rate),
                         cat_arrival_, [this] { handle_arrival(); });
}

void MultiGroupSimulation::handle_arrival() {
  schedule_next_arrival();
  const std::size_t group_index = group_rng_.weighted_index(group_shares_);
  GroupRuntime& runtime = runtimes_[group_index];

  core::FlowRequest request;
  request.source = config_.sources[source_rng_.uniform_index(config_.sources.size())];
  request.bandwidth_bps = runtime.spec.flow_bandwidth_bps;
  const core::AdmissionDecision decision =
      controller_for(runtime, request.source).admit(request, selection_rng_);

  if (measuring_) {
    ++runtime.offered;
    runtime.attempts += decision.attempts;
    if (decision.admitted) {
      ++runtime.admitted;
    }
  }
  if (!decision.admitted) {
    return;
  }
  ActiveFlow flow;
  flow.source = request.source;
  flow.destination_index = *decision.destination_index;
  flow.route = decision.route;
  flow.bandwidth_bps = request.bandwidth_bps;
  flow.admitted_at = simulator_.now();
  const FlowId id = flows_.insert(std::move(flow));
  simulator_.schedule_in(holding_rng_.exponential(config_.mean_holding_s), cat_departure_,
                         [this, id] {
    const ActiveFlow flow = flows_.take(id);
    rsvp_.teardown(flow.route, flow.bandwidth_bps);
  });
}

MultiGroupResult MultiGroupSimulation::run() {
  util::require(!ran_, "a MultiGroupSimulation instance runs once");
  ran_ = true;
  schedule_next_arrival();
  simulator_.run_until(config_.warmup_s);
  measuring_ = true;
  simulator_.run_until(config_.warmup_s + config_.measure_s);

  MultiGroupResult result;
  std::uint64_t total_offered = 0;
  std::uint64_t total_admitted = 0;
  for (const GroupRuntime& runtime : runtimes_) {
    MultiGroupResult::PerGroup per;
    per.address = runtime.spec.address;
    per.offered = runtime.offered;
    per.admitted = runtime.admitted;
    per.admission_probability =
        runtime.offered == 0
            ? 0.0
            : static_cast<double>(runtime.admitted) / static_cast<double>(runtime.offered);
    per.average_attempts = runtime.offered == 0 ? 0.0
                                                : static_cast<double>(runtime.attempts) /
                                                      static_cast<double>(runtime.offered);
    total_offered += runtime.offered;
    total_admitted += runtime.admitted;
    result.groups.push_back(std::move(per));
  }
  result.aggregate_admission_probability =
      total_offered == 0 ? 0.0
                         : static_cast<double>(total_admitted) /
                               static_cast<double>(total_offered);
  stats::Accumulator utilization;
  for (net::LinkId id = 0; id < topology_->link_count(); ++id) {
    utilization.add(ledger_.utilization(id));
  }
  result.mean_link_utilization = utilization.mean();
  return result;
}

}  // namespace anyqos::sim
