// Bridges simulation results into the obs::MetricsRegistry: one call turns a
// finished run into labelled counters, gauges, and histograms (per-member
// admissions, per-kind signaling traffic, per-link utilization) that the
// registry's Prometheus/JSONL writers can export. Kept out of Simulation
// itself so runs without a registry pay nothing.
#pragma once

#include "src/obs/registry.h"
#include "src/sim/simulation.h"

namespace anyqos::sim {

/// Registers `result` (from `simulation`, configured by `config`) into
/// `registry`. Every family carries a `system` label with the run's
/// "<A,R>" label, so several systems can share one registry side by side.
/// `extra` labels are appended to every series — chaos-matrix cells pass
/// {{"cell", "<n>"}} so runs with identical system labels stay distinct.
/// Per-link utilization gauges reflect the ledger at call time (end of run).
void export_metrics(const Simulation& simulation, const SimulationConfig& config,
                    const SimulationResult& result, obs::MetricsRegistry& registry,
                    const obs::Labels& extra = {});

}  // namespace anyqos::sim
