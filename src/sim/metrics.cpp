#include "src/sim/metrics.h"

#include "src/util/require.h"

namespace anyqos::sim {

MetricsCollector::MetricsCollector(std::size_t group_size, std::size_t batch_count)
    : admission_batches_(batch_count), per_destination_(group_size, 0) {
  util::require(group_size >= 1, "metrics need a positive group size");
}

void MetricsCollector::begin_measurement(double now) {
  util::require(!measuring_, "measurement already started");
  measuring_ = true;
  active_flows_.restart(now);
}

void MetricsCollector::record_decision(bool admitted, std::size_t attempts,
                                       std::uint64_t messages, std::size_t destination_index) {
  // Validate every argument before the first mutation so a bad call leaves
  // the collector untouched (no half-recorded decision). The destination
  // bound is checked even for rejections: callers pass an index either way,
  // and an out-of-range one signals a corrupted decision upstream.
  // Zero attempts is legal only for rejections: with every group member down
  // (churn) there is nobody to try and the request bounces immediately.
  util::require(admitted ? attempts >= 1 : true,
                "an admission involves at least one attempt");
  util::require(destination_index < per_destination_.size(),
                "destination index out of range");
  ++lifetime_offered_;
  lifetime_attempts_ += attempts;
  if (admitted) {
    ++lifetime_admitted_;
  }
  if (!measuring_) {
    return;
  }
  ++offered_;
  admission_batches_.add(admitted ? 1.0 : 0.0);
  attempts_.add(attempts);
  messages_.add(static_cast<double>(messages));
  if (admitted) {
    ++admitted_;
    ++per_destination_[destination_index];
  }
}

void MetricsCollector::record_active_flows(double now, std::size_t active) {
  active_flows_.update(now, static_cast<double>(active));
}

void MetricsCollector::record_dropped_flow() { record_teardown(TeardownCause::kLinkFault); }

void MetricsCollector::record_teardown(TeardownCause cause) {
  const auto index = static_cast<std::size_t>(cause);
  util::require(index < kTeardownCauseCount, "unknown teardown cause");
  ++lifetime_teardowns_[index];
  if (!measuring_) {
    return;
  }
  ++teardowns_[index];
  if (cause != TeardownCause::kExplicit) {
    ++dropped_;  // involuntary teardowns are the paper-facing "dropped" tally
  }
}

void MetricsCollector::record_failover(bool admitted) {
  ++lifetime_failover_attempts_;
  if (admitted) {
    ++lifetime_failover_admitted_;
  }
  if (!measuring_) {
    return;
  }
  ++failover_attempts_;
  if (admitted) {
    ++failover_admitted_;
  }
}

void MetricsCollector::record_shed() {
  ++lifetime_shed_;
  if (measuring_) {
    ++shed_;
  }
}

void MetricsCollector::record_repair(bool repaired) {
  if (repaired) {
    ++lifetime_repaired_;
  }
  if (!measuring_) {
    return;
  }
  if (repaired) {
    ++repaired_;
  } else {
    ++unrepairable_;
  }
}

std::uint64_t MetricsCollector::teardowns(TeardownCause cause) const {
  const auto index = static_cast<std::size_t>(cause);
  util::require(index < kTeardownCauseCount, "unknown teardown cause");
  return teardowns_[index];
}

std::uint64_t MetricsCollector::lifetime_teardowns(TeardownCause cause) const {
  const auto index = static_cast<std::size_t>(cause);
  util::require(index < kTeardownCauseCount, "unknown teardown cause");
  return lifetime_teardowns_[index];
}

double MetricsCollector::admission_probability() const {
  return offered_ == 0 ? 0.0
                       : static_cast<double>(admitted_) / static_cast<double>(offered_);
}

stats::ConfidenceInterval MetricsCollector::admission_ci(double level) const {
  if (!admission_batches_.ready()) {
    stats::ConfidenceInterval ci;
    ci.mean = admission_probability();
    return ci;
  }
  return admission_batches_.confidence(level);
}

double MetricsCollector::average_attempts() const { return attempts_.mean(); }

double MetricsCollector::average_messages() const { return messages_.mean(); }

double MetricsCollector::average_active_flows(double now) const {
  return active_flows_.mean(now);
}

}  // namespace anyqos::sim
