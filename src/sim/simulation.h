// Flow-level discrete-event simulation of a DAC system (paper Section 5).
//
// One Simulation instance evaluates one system <A, R> (or a baseline) on one
// topology under one traffic model: Poisson request arrivals run through the
// admission procedure; admitted flows hold bandwidth for an exponential
// lifetime and then release it. Warm-up is discarded before measuring.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "src/control/directive.h"
#include "src/control/governor.h"
#include "src/core/admission.h"
#include "src/core/centralized.h"
#include "src/core/selector.h"
#include "src/des/simulator.h"
#include "src/net/bandwidth.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/kernel_stats.h"
#include "src/obs/ops_server.h"
#include "src/obs/profiler.h"
#include "src/obs/registry.h"
#include "src/obs/span.h"
#include "src/obs/timeline.h"
#include "src/net/reconvergence.h"
#include "src/net/routing.h"
#include "src/net/topologies.h"
#include "src/sim/churn.h"
#include "src/sim/flow_table.h"
#include "src/sim/metrics.h"
#include "src/sim/trace.h"
#include "src/sim/traffic.h"
#include "src/signaling/path_repair.h"
#include "src/signaling/probe.h"
#include "src/signaling/resilient.h"
#include "src/signaling/rsvp.h"
#include "src/stats/quantile.h"
#include "src/stats/time_weighted.h"

namespace anyqos::sim {

/// A scheduled duplex-link outage (fault-tolerance extension; see faults.h
/// for generators). Flows routed over the link when it fails are torn down.
struct LinkFault {
  net::NodeId a = net::kInvalidNode;  ///< duplex link endpoint
  net::NodeId b = net::kInvalidNode;  ///< duplex link endpoint
  double fail_at = 0.0;               ///< outage start (simulated seconds)
  double repair_at = 0.0;             ///< outage end; must exceed fail_at
};

/// A scheduled router crash/recovery (failure-domain plane; see faults.h for
/// generators). A down router takes every incident duplex link out
/// atomically and any co-located group members with it. Outages of the same
/// element may overlap (correlated regional outages + independent link
/// faults): links and nodes are hold-counted, so an element returns to
/// service only when every overlapping outage holding it down has ended.
struct NodeFault {
  net::NodeId node = net::kInvalidNode;  ///< the crashing router
  double fail_at = 0.0;                  ///< crash time (simulated seconds)
  double repair_at = 0.0;                ///< recovery; must exceed fail_at
};

/// Full description of one simulation run.
struct SimulationConfig {
  // --- Workload ---
  TrafficModel traffic;                      ///< arrivals, holding, bandwidth, sources
  std::vector<net::NodeId> group_members;    ///< the anycast group G(A)
  double anycast_share = 0.2;                ///< link fraction usable by anycast

  // --- System under test (the paper's <A, R> tuple, or a baseline) ---
  bool use_gdi = false;                      ///< run the GDI oracle instead of DAC
  /// Run the centralized-agency baseline (Section 1's alternative) instead
  /// of DAC. Mutually exclusive with use_gdi.
  bool use_centralized = false;
  net::NodeId controller_node = 0;           ///< where the central agency lives
  double controller_rate = 1.0e6;            ///< agency decisions per second
  core::SelectionAlgorithm algorithm = core::SelectionAlgorithm::kEvenDistribution;
  std::size_t max_tries = 2;                 ///< R: destinations tried per request
  double alpha = 0.5;                        ///< WD/D+H history discount
  bool wdb_mask_infeasible = false;          ///< WD/D+B masking ablation

  // --- Run control ---
  double warmup_s = 2'000.0;                 ///< discarded transient
  double measure_s = 20'000.0;               ///< measurement window length
  std::uint64_t seed = 1;                    ///< master seed (common random numbers)
  /// One-way per-hop latency of a signaling message, seconds. Setup delay of
  /// a request = its sequential message walks x this (paper Section 5.1:
  /// admission delay is proportional to the reservation messages). 0 keeps
  /// the delay metric silent.
  double signaling_hop_delay_s = 0.0;
  std::size_t ci_batches = 20;               ///< batch-means batches for the AP CI
  std::vector<LinkFault> faults;             ///< optional outage schedule

  // --- Robustness extension (DAC runs only) ---
  /// When set, the run uses the ResilientReservationProtocol: control
  /// messages traverse a FaultPlane (loss / delay / outage kills) and the
  /// source recovers with timeouts, bounded retransmission with backoff, and
  /// soft-state orphan reclamation. Unset keeps the paper's fault-free walk.
  std::optional<signaling::ResilienceOptions> resilience;
  /// Member outages replayed during the run (see churn.h for generators).
  /// While a member is down it is excluded from selection and flows pinned
  /// to it are torn down.
  std::vector<MemberChurnEvent> churn;
  /// Re-admit flows displaced by member churn through the normal admission
  /// procedure (fresh request, remaining members only). Counted separately
  /// from offered traffic as failover attempts/admissions.
  bool failover_readmit = true;
  /// Router crash/recovery schedule (see faults.h for Poisson MTBF/MTTR and
  /// regional-outage generators). DAC runs only. A crash fails every
  /// incident link (hold-counted against overlapping link faults) and takes
  /// co-located group members down; member churn cannot revive a member
  /// whose router is crashed.
  std::vector<NodeFault> node_faults;
  /// Routing reconvergence model (must outlive the simulation). When set,
  /// every duplex up/down transition schedules a route-table recompute
  /// `delay_s` later (restart semantics: a burst converges once, after its
  /// last change). During the stale window admission walks the old routes
  /// and fails realistically with PATH_ERR; members the recompute leaves
  /// unreachable are masked from selection like down members. Unset keeps
  /// the paper's static routes forever — unchanged behaviour. DAC runs only.
  net::ReconvergencePolicy* reconvergence = nullptr;
  /// Re-signal flows whose route lost a link instead of dropping them: the
  /// broken flow holds its surviving links (narrowed reservation) until the
  /// next reconvergence, then re-reserves over the fresh route
  /// (make-before-break; break-before-make when nothing survived) or is
  /// dropped as unrepairable. Requires `reconvergence`. DAC runs only.
  bool path_repair = false;
  /// After the measurement window, stop offering new flows and run the
  /// calendar dry (departures, orphan reclaims, repairs, recoveries). With
  /// this set a clean run ends with zero reserved bandwidth everywhere —
  /// the chaos harness's leak check.
  bool drain_to_quiescence = false;
  /// Drain watchdog (unattended chaos/fuzz hardening): caps on the
  /// drain_to_quiescence run-to-empty. `drain_max_events` bounds events
  /// dispatched during the drain; `drain_max_sim_s` bounds simulated time
  /// past the measurement window. 0 disables a cap (the drain runs
  /// unbounded, exactly as before). A drain that hits either cap with
  /// events still queued trips the watchdog: run() fires a flight-recorder
  /// dump ("drain_watchdog <reason>"), records a DrainWatchdogReport
  /// (drain_watchdog()), and returns normally — a tripped report is the
  /// harness's cue to fail the run with diagnostics instead of hanging a CI
  /// job. A capped drain that completes is byte-identical to an unbounded
  /// one.
  std::size_t drain_max_events = 0;
  double drain_max_sim_s = 0.0;
  /// TEST ONLY. Disables the duplex-link hold-count idempotency guard so an
  /// overlapping outage of an already-down duplex re-applies the failure —
  /// the exact bug class the hold counts were built to prevent (the ledger
  /// throws "link is already failed"). Exists so the chaosfuzz planted-bug
  /// gate can prove the fuzzer finds, shrinks, and deterministically
  /// replays a real violation. Never set outside tests.
  bool defeat_duplex_idempotency = false;
  /// Optional flow-event observer (must outlive the simulation). Receives
  /// every event including warm-up; aggregate metrics stay warm-up-filtered.
  TraceSink* trace = nullptr;
  /// Optional admission-decision tracer (must outlive the simulation). DAC
  /// runs only; wired into every AC-router controller with the kernel clock
  /// installed. Spans cover warm-up too (request ids start at 1).
  obs::DecisionTracer* tracer = nullptr;
  /// Optional engine profiler (must outlive the simulation). run() attaches
  /// it to the kernel before the first event and brackets the warm-up and
  /// measurement phases with wall-clock timers.
  obs::EngineProfiler* profiler = nullptr;
  /// Optional windowed telemetry sampler (must outlive the simulation; one
  /// Timeline records one run — construct fresh per simulation). run()
  /// registers the standard columns (active flows, admission/teardown/
  /// signaling rates, per-member weights and up/down state, per-link
  /// utilization with within-window high-water marks), attaches the sampler
  /// to the kernel, and marks the warm-up boundary. Interval comes from the
  /// Timeline's own options. Unset costs nothing on the hot path.
  obs::Timeline* timeline = nullptr;
  /// Optional flight recorder (must outlive the simulation). The simulation
  /// feeds it every flow/link/member event it would trace and fires a dump
  /// trigger when a link fault or member churn takes flows down. To also
  /// capture decision spans in the ring, point `tracer`'s sink at the
  /// recorder's span_sink(); to dump on invariant violations, wire the
  /// auditor's violation hook to trigger(). Unset costs nothing.
  obs::FlightRecorder* flight_recorder = nullptr;
  /// Optional overload governor (must outlive the simulation; one governor
  /// records one run — construct fresh per simulation). DAC runs only. The
  /// constructor bind()s it (group size, retry ceiling R = max_tries) and
  /// run() attaches its feedback window to the kernel. Depending on its
  /// options it then (1) adapts the effective retrial bound from windowed
  /// rejection/utilization feedback, (2) gates members through per-member
  /// circuit breakers fed by every reservation outcome and by churn, and
  /// (3) sheds requests without any reservation walk when its signaling
  /// budget is exhausted (counted in SimulationResult::shed, not in
  /// offered). Unset costs one pointer check per use and leaves every
  /// artifact byte-identical.
  control::OverloadGovernor* governor = nullptr;
  /// Optional kernel telemetry sink (must outlive the simulation; one
  /// collector records one run). run() attaches it to the kernel before the
  /// first event, so it sees every schedule/fire/cancel tagged with the
  /// model's category taxonomy (DESIGN.md §15). Attached runs stay
  /// byte-identical at equal seed — the collector reads only the virtual
  /// clock; unset costs one pointer test per kernel operation and leaves
  /// every artifact byte-identical.
  obs::KernelStats* kernel_stats = nullptr;

  // --- Live ops plane (DESIGN.md §13; all optional, all must outlive the
  // simulation). A recurring ops-poll timer — scheduled only when any of
  // these is set — drains replay directives and the live mailbox on the DES
  // thread, applies them through the governor, logs each application, and
  // publishes fresh /metrics, /status, and /healthz documents. Live
  // publishing reads state and writes to the server only, so an ops-enabled
  // but unsteered run keeps every artifact byte-identical.
  /// HTTP listener to publish scrape documents to (scrape-only is fine).
  obs::OpsServer* ops_server = nullptr;
  /// Live control inlet. Directives drain FIFO at each poll and apply via
  /// governor->apply_directive, so `governor` is required. Mutually
  /// exclusive with ops_replay (a replayed run is serverless by contract).
  control::DirectiveMailbox* ops_mailbox = nullptr;
  /// Applied-directive log (JSONL). Written at application time with the
  /// DES clock, so replaying it reproduces the steered run byte-identically.
  control::OpsLogWriter* ops_log = nullptr;
  /// Recorded directives to re-apply (load_ops_log). Each applies at the
  /// first poll whose time reaches its apply_at — the same boundary the
  /// live run applied it at. Requires `governor`.
  std::vector<control::TimedDirective> ops_replay;
  /// Simulated seconds between ops polls; align with the governor window so
  /// directives land exactly at window boundaries.
  double ops_interval_s = 50.0;
  /// Extra labels on every live-scrape series (e.g. the chaos cell id).
  obs::Labels ops_labels;
};

/// What the drain watchdog saw (SimulationConfig::drain_max_events /
/// drain_max_sim_s). `tripped` means the post-measurement drain hit a cap
/// with events still queued — the run never reached quiescence and its
/// leak gates are meaningless; harnesses treat this as its own failure
/// class ("hang") rather than a leak.
struct DrainWatchdogReport {
  bool tripped = false;
  std::string reason;              ///< "event budget exhausted" or "sim-time cap reached"
  std::size_t pending_events = 0;  ///< calendar entries still queued at the trip
  std::size_t active_flows = 0;    ///< flows still holding bandwidth at the trip
  double sim_time_s = 0.0;         ///< virtual clock at the trip
  std::size_t drained_events = 0;  ///< events the drain dispatched (capped or not)
};

/// Aggregated outcome of a run (measurement window only).
struct SimulationResult {
  std::string system_label;                  ///< e.g. "<ED,2>", "GDI"
  double admission_probability = 0.0;        ///< paper's AP metric
  stats::ConfidenceInterval admission_ci;    ///< 95% batch-means CI on AP
  double average_attempts = 0.0;             ///< paper's retrial metric
  stats::CountHistogram attempts_histogram;  ///< tries-per-request distribution
  double average_messages = 0.0;             ///< signaling messages per request
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t dropped = 0;                 ///< torn down involuntarily (faults + churn)
  std::uint64_t dropped_by_fault = 0;        ///< teardowns caused by link outages
  std::uint64_t dropped_by_churn = 0;        ///< teardowns caused by member churn
  std::uint64_t explicit_teardowns = 0;      ///< normal end-of-holding releases
  std::uint64_t failover_attempts = 0;       ///< churn-displaced flows re-offered
  std::uint64_t failover_admitted = 0;       ///< ... of which the network re-admitted
  /// Requests fast-rejected by the overload governor's signaling budget
  /// with no reservation walk. Counted separately from capacity rejections
  /// and excluded from `offered` (shed requests never enter the DAC loop).
  std::uint64_t shed = 0;
  /// Broken flows re-signaled onto the post-reconvergence route (path
  /// repair; counted separately from churn failover — repair preserves the
  /// admitted flow, failover re-offers a torn-down one).
  std::uint64_t repaired = 0;
  /// Broken flows dropped because no repair was possible (dead endpoint,
  /// partition, or no capacity on the new route). Also in dropped_by_fault.
  std::uint64_t unrepairable = 0;
  /// Route-table recomputes committed (0 without a reconvergence policy).
  std::uint64_t reconvergences = 0;
  /// Router crash transitions applied (overlap-merged).
  std::uint64_t node_outages = 0;
  /// Control-plane recovery tallies (all zero unless config.resilience set).
  signaling::ResilienceStats resilience;
  std::vector<std::uint64_t> per_destination_admissions;
  double average_active_flows = 0.0;
  double mean_link_utilization = 0.0;        ///< time-avg, then mean over links
  double max_link_utilization = 0.0;         ///< time-avg, then max over links
  signaling::MessageCounter messages;        ///< per-kind tallies
  /// Mean queueing+service delay at the central agency per request, seconds
  /// (0 for DAC/GDI runs — their decisions are local).
  double average_decision_delay_s = 0.0;
  /// Signaling setup delay per request (messages x per-hop latency):
  /// mean and 95th percentile. Zero when signaling_hop_delay_s is 0.
  double average_setup_delay_s = 0.0;
  double p95_setup_delay_s = 0.0;
};

/// Runs one configured system to completion.
class Simulation {
 public:
  /// `topology` must outlive the simulation.
  Simulation(const net::Topology& topology, SimulationConfig config);

  /// Executes warm-up plus measurement and returns the results.
  /// May be called once per instance.
  SimulationResult run();

  /// Read access for tests/examples (valid after run()).
  [[nodiscard]] const net::BandwidthLedger& ledger() const { return ledger_; }
  /// Mutable ledger access for instrumentation (observer registration).
  /// Reserving or releasing bandwidth here yourself voids the results.
  [[nodiscard]] net::BandwidthLedger& ledger() { return ledger_; }
  [[nodiscard]] const net::RouteTable& routes() const { return routes_; }
  [[nodiscard]] const core::AnycastGroup& group() const { return group_; }

  /// Registers `observer` on every AC-router controller, existing and
  /// lazily created later (nullptr detaches). DAC runs only — GDI and the
  /// centralized baseline have no per-source controllers to observe.
  void set_admission_observer(core::AdmissionObserver* observer);

  /// The per-source selectors instantiated so far (DAC runs only; lazily
  /// created on first request from a source). For monitoring and auditing.
  [[nodiscard]] std::vector<std::pair<net::NodeId, const core::DestinationSelector*>>
  active_selectors() const;

  /// The simulation kernel — exposed so instrumentation (e.g.
  /// TimeSeriesProbe) can be attached *before* run(). Scheduling model
  /// events here yourself voids the results.
  [[nodiscard]] des::Simulator& simulator() { return simulator_; }
  /// Currently active (admitted, undeparted) flows.
  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }
  /// True once the post-measurement drain has begun (drain_to_quiescence).
  /// Periodic self-rescheduling instrumentation (auditor checkpoints,
  /// time-series probes) must stop re-arming once this is set, or the
  /// run-to-empty drain never finds an empty calendar.
  [[nodiscard]] bool draining() const { return draining_; }

  /// Ops directives applied so far (mailbox + replay), for summaries.
  [[nodiscard]] std::uint64_t ops_directives_applied() const {
    return ops_directives_applied_;
  }

  /// The resilient signaling plane, or nullptr for fault-free runs. Exposed
  /// so the chaos harness can inspect recovery state and repair leaks
  /// (reclaim_pending) after a drained run.
  [[nodiscard]] signaling::ResilientReservationProtocol* resilient() { return resilient_; }
  [[nodiscard]] const signaling::ResilientReservationProtocol* resilient() const {
    return resilient_;
  }

  /// The drain watchdog's report (valid after run(); `tripped` is always
  /// false when no cap was configured or the drain reached quiescence).
  [[nodiscard]] const DrainWatchdogReport& drain_watchdog() const {
    return drain_watchdog_;
  }

  /// Broken flows still queued for repair (0 after a clean drain — the chaos
  /// harness counts a non-empty queue as a leak).
  [[nodiscard]] std::size_t pending_repairs() const {
    return repair_ ? repair_->pending() : 0;
  }
  /// Repair-plane tallies (all zero unless config.path_repair).
  [[nodiscard]] signaling::PathRepairStats repair_stats() const {
    return repair_ ? repair_->stats() : signaling::PathRepairStats{};
  }
  /// True while the route table lags a topology change (reconvergence runs).
  [[nodiscard]] bool routes_stale() const { return routes_stale_; }

  /// "<A,R>" label for this configuration (e.g. "<WD/D+H,2>", "GDI").
  [[nodiscard]] static std::string system_label(const SimulationConfig& config);

 private:
  void schedule_next_arrival();
  void handle_arrival();
  void handle_departure(FlowId id);
  void apply_fault(const LinkFault& fault);
  void repair_fault(const LinkFault& fault);
  void apply_node_down(const NodeFault& fault);
  void apply_node_up(const NodeFault& fault);
  /// Hold-counted duplex transitions (`forward` = even link id). Return true
  /// on an actual 0->1 (down) / 1->0 (up) state change; overlapping outages
  /// of the same duplex only transition once.
  bool take_duplex_down(net::LinkId forward);
  bool bring_duplex_up(net::LinkId forward);
  void drop_flows_on_link(net::LinkId link);
  /// Records a duplex up/down transition with the reconvergence plane:
  /// schedules a route recompute after the policy delay (restart semantics —
  /// a later change supersedes the pending one). No-op without a policy.
  void note_topology_change();
  void reconverge();
  void run_repair_pass();
  void apply_member_down(std::size_t member);
  void apply_member_up(std::size_t member);
  void attempt_failover(const ActiveFlow& displaced);
  void touch_links(const net::Path& path);
  void emit_trace(TraceEventKind kind, std::uint64_t flow, net::NodeId source,
                  net::NodeId destination, std::size_t attempts, double bandwidth_bps);
  void wire_timeline();
  [[nodiscard]] bool ops_active() const;
  void schedule_ops_poll();
  void ops_poll();
  void apply_ops_directive(const control::ControlDirective& directive);
  void publish_ops();
  core::AdmissionController& controller_for(net::NodeId source);

  const net::Topology* topology_;
  SimulationConfig config_;
  core::AnycastGroup group_;
  net::BandwidthLedger ledger_;
  net::RouteTable routes_;
  signaling::MessageCounter counter_;
  /// The kernel owns this run's seed universe: every stream below derives
  /// from simulator_.seeds(), so the (simulator, model) pair is fully
  /// isolated — no RNG state outside the instance (DESIGN.md §12).
  des::Simulator simulator_;
  /// Loss, jitter, and backoff draws for the resilient signaling plane.
  /// Declared (and therefore constructed) before rsvp_, which captures it.
  des::RandomStream control_rng_;
  std::unique_ptr<signaling::ReservationProtocol> rsvp_;
  signaling::ResilientReservationProtocol* resilient_ = nullptr;  // rsvp_ downcast or null
  signaling::ProbeService probe_;
  ArrivalProcess arrivals_;
  des::RandomStream selection_rng_;
  std::vector<std::unique_ptr<core::AdmissionController>> controllers_;  // by source index
  core::AdmissionObserver* admission_observer_ = nullptr;
  std::unique_ptr<core::GlobalAdmissionOracle> oracle_;
  std::unique_ptr<core::CentralizedController> central_;
  stats::Accumulator decision_delay_;
  stats::Accumulator setup_delay_;
  stats::P2Quantile setup_delay_p95_{0.95};
  FlowTable flows_;
  MetricsCollector metrics_;
  std::vector<stats::TimeWeighted> link_utilization_;
  // --- Failure-domain plane (empty/idle unless node faults, reconvergence,
  // or path repair are configured) ---
  std::vector<std::uint32_t> duplex_hold_;  // overlapping outages per duplex link
  std::vector<char> duplex_up_;             // 1 while hold count is zero
  std::vector<std::uint32_t> node_hold_;    // overlapping outages per router
  std::unique_ptr<signaling::PathRepair> repair_;  // non-null iff path_repair
  double reconverge_delay_s_ = 0.0;
  std::uint64_t route_generation_ = 0;  // bumps per change; stale timers no-op
  bool routes_stale_ = false;
  std::uint64_t reconvergences_ = 0;
  std::uint64_t node_outages_ = 0;
  obs::Timeline* timeline_ = nullptr;         // config_.timeline, hot-path copy
  obs::FlightRecorder* flight_ = nullptr;     // config_.flight_recorder, hot-path copy
  control::OverloadGovernor* governor_ = nullptr;  // config_.governor, hot-path copy
  // Kernel event categories (interned per instance in the constructor; the
  // tags ride every schedule call and are read only by an attached
  // obs::KernelStats — zero-cost otherwise, DESIGN.md §15).
  des::EventCategory cat_arrival_;
  des::EventCategory cat_departure_;
  des::EventCategory cat_link_fault_;
  des::EventCategory cat_churn_;
  des::EventCategory cat_node_fault_;
  des::EventCategory cat_reconverge_;
  des::EventCategory cat_ops_poll_;
  std::vector<obs::Timeline::ColumnId> link_hwm_columns_;  // by LinkId (timeline runs)
  std::uint64_t next_request_id_ = 0;  // arrival sequence; span/trace join key
  std::size_t ops_replay_next_ = 0;    // first unapplied config_.ops_replay entry
  std::uint64_t ops_directives_applied_ = 0;
  DrainWatchdogReport drain_watchdog_;
  bool ran_ = false;
  bool draining_ = false;  // drain_to_quiescence: arrivals stop, calendar runs dry
};

}  // namespace anyqos::sim
